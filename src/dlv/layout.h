#ifndef MODELHUB_DLV_LAYOUT_H_
#define MODELHUB_DLV_LAYOUT_H_

#include <string>

#include "common/env.h"

namespace modelhub {
namespace repo_layout {

/// On-disk layout of a DLV repository, shared by the Repository, the
/// crash-recovery routine and fsck:
///
///   catalog.bin    relational catalog (CRC-framed)
///   journal.bin    commit journal — present only while a commit publish
///                  is in flight (or after a crash mid-publish)
///   staging/       raw snapshot parameters awaiting archival (CRC-framed)
///   pas/           PAS archive (chunks-<gen>.bin, manifest.bin)
///   objects/       content-addressed associated files
///   quarantine/    artifacts set aside by recovery or `dlv fsck`

inline std::string CatalogPath(const std::string& root) {
  return JoinPath(root, "catalog.bin");
}
inline std::string CommitJournalPath(const std::string& root) {
  return JoinPath(root, "journal.bin");
}
inline std::string StagingDir(const std::string& root) {
  return JoinPath(root, "staging");
}
inline std::string ObjectsDir(const std::string& root) {
  return JoinPath(root, "objects");
}
inline std::string PasDir(const std::string& root) {
  return JoinPath(root, "pas");
}
inline std::string QuarantineDir(const std::string& root) {
  return JoinPath(root, "quarantine");
}
inline std::string StagingFileName(const std::string& version,
                                   int64_t sequence) {
  return version + ".s" + std::to_string(sequence) + ".params";
}
inline std::string StagingFile(const std::string& root,
                               const std::string& version, int64_t sequence) {
  return JoinPath(StagingDir(root), StagingFileName(version, sequence));
}
inline std::string ObjectFile(const std::string& root,
                              const std::string& object_name) {
  return JoinPath(ObjectsDir(root), object_name);
}

}  // namespace repo_layout
}  // namespace modelhub

#endif  // MODELHUB_DLV_LAYOUT_H_
