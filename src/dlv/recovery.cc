#include "dlv/recovery.h"

#include "common/checked_io.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/macros.h"
#include "dlv/layout.h"

namespace modelhub {

namespace {

constexpr char kJournalMagic[] = "MHJL1\n";
constexpr size_t kJournalMagicSize = 6;

bool EndsWithTmp(const std::string& name) {
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
}

/// CRC of a file's logical payload (under the CRC footer when `framed`);
/// false when the file is unreadable or a framed footer does not verify.
bool FileCrc(Env* env, const std::string& path, bool framed, uint32_t* crc) {
  auto bytes = env->ReadFile(path);
  if (!bytes.ok()) return false;
  if (!framed) {
    *crc = Crc32(Slice(*bytes));
    return true;
  }
  auto payload = StripCrcFooter(*bytes);
  if (!payload.ok()) return false;
  *crc = Crc32(Slice(*payload));
  return true;
}

/// Quarantines every `*.tmp` child of `dir` (non-recursive, best effort).
void SweepTmpFiles(Env* env, const std::string& root, const std::string& dir,
                   RecoveryReport* report) {
  if (!env->DirExists(dir)) return;
  auto names = env->ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    if (!EndsWithTmp(name)) continue;
    const std::string path = JoinPath(dir, name);
    if (env->DirExists(path)) continue;
    auto moved = QuarantineFile(env, root, path);
    if (moved.ok()) {
      report->actions.push_back("quarantined stray tmp file " + path);
    }
  }
}

}  // namespace

std::string SerializeCommitJournal(const CommitJournal& journal) {
  std::string out(kJournalMagic, kJournalMagicSize);
  PutFixed32(&out, journal.new_catalog_crc);
  PutVarint64(&out, journal.entries.size());
  for (const JournalEntry& entry : journal.entries) {
    PutLengthPrefixed(&out, Slice(entry.tmp_path));
    PutLengthPrefixed(&out, Slice(entry.final_path));
    PutFixed32(&out, entry.crc);
    out.push_back(entry.framed ? 1 : 0);
  }
  return out;
}

Result<CommitJournal> ParseCommitJournal(const std::string& payload) {
  if (payload.size() < kJournalMagicSize ||
      payload.compare(0, kJournalMagicSize, kJournalMagic) != 0) {
    return Status::Corruption("bad commit journal magic");
  }
  Slice in(payload);
  in.RemovePrefix(kJournalMagicSize);
  CommitJournal journal;
  MH_RETURN_IF_ERROR(GetFixed32(&in, &journal.new_catalog_crc));
  uint64_t count = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&in, &count));
  for (uint64_t i = 0; i < count; ++i) {
    JournalEntry entry;
    Slice tmp;
    Slice final_path;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &tmp));
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &final_path));
    MH_RETURN_IF_ERROR(GetFixed32(&in, &entry.crc));
    if (in.empty()) return Status::Corruption("commit journal truncated");
    entry.framed = in[0] != 0;
    in.RemovePrefix(1);
    entry.tmp_path = tmp.ToString();
    entry.final_path = final_path.ToString();
    journal.entries.push_back(std::move(entry));
  }
  if (!in.empty()) return Status::Corruption("commit journal trailing bytes");
  return journal;
}

Result<std::string> QuarantineFile(Env* env, const std::string& root,
                                   const std::string& path) {
  const std::string dir = repo_layout::QuarantineDir(root);
  MH_RETURN_IF_ERROR(env->CreateDirs(dir));
  const size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::string target = JoinPath(dir, base);
  for (int n = 1; env->FileExists(target); ++n) {
    target = JoinPath(dir, base + "." + std::to_string(n));
  }
  MH_RETURN_IF_ERROR(env->RenameFile(path, target));
  return target;
}

Result<RecoveryReport> RecoverRepository(Env* env, const std::string& root) {
  RecoveryReport report;
  const std::string journal_path = repo_layout::CommitJournalPath(root);
  if (env->FileExists(journal_path)) {
    report.journal_found = true;
    CommitJournal journal;
    bool journal_valid = false;
    auto payload = ReadChecked(env, journal_path);
    if (payload.ok()) {
      auto parsed = ParseCommitJournal(*payload);
      if (parsed.ok()) {
        journal = std::move(*parsed);
        journal_valid = true;
      }
    }
    if (!journal_valid) {
      // The journal write itself was interrupted, so no renames were
      // performed yet: the old state is intact and the tmp sweep below
      // collects the droppings.
      report.rolled_back = true;
      report.actions.push_back(
          "discarded torn commit journal (publish never started)");
    } else {
      uint32_t catalog_crc = 0;
      const bool have_catalog = FileCrc(env, repo_layout::CatalogPath(root),
                                        /*framed=*/true, &catalog_crc);
      if (have_catalog && catalog_crc == journal.new_catalog_crc) {
        // Commit point reached: finish any renames that did not happen.
        report.rolled_forward = true;
        for (const JournalEntry& entry : journal.entries) {
          const std::string tmp = JoinPath(root, entry.tmp_path);
          const std::string final_path = JoinPath(root, entry.final_path);
          if (!env->FileExists(tmp)) continue;
          if (env->FileExists(final_path)) {
            (void)env->DeleteFile(tmp);
          } else if (env->RenameFile(tmp, final_path).ok()) {
            report.actions.push_back("completed publish of " + final_path);
          }
        }
        report.actions.push_back("rolled forward committed publish");
      } else {
        // Commit point not reached: undo. Tmp files are private to the
        // failed commit (deleted); already-renamed finals are quarantined —
        // the journal CRC guards against touching unrelated files.
        report.rolled_back = true;
        for (const JournalEntry& entry : journal.entries) {
          const std::string tmp = JoinPath(root, entry.tmp_path);
          const std::string final_path = JoinPath(root, entry.final_path);
          if (env->FileExists(tmp)) (void)env->DeleteFile(tmp);
          uint32_t crc = 0;
          if (env->FileExists(final_path) &&
              FileCrc(env, final_path, entry.framed, &crc) &&
              crc == entry.crc) {
            auto moved = QuarantineFile(env, root, final_path);
            if (moved.ok()) {
              report.actions.push_back("rolled back uncommitted artifact " +
                                       final_path);
            }
          }
        }
        report.actions.push_back("rolled back incomplete commit publish");
      }
    }
    MH_RETURN_IF_ERROR(env->DeleteFile(journal_path));
  }
  // Torn or abandoned writes leave `*.tmp` droppings next to the real
  // artifacts; none are referenced once the journal is resolved.
  SweepTmpFiles(env, root, root, &report);
  SweepTmpFiles(env, root, repo_layout::StagingDir(root), &report);
  SweepTmpFiles(env, root, repo_layout::ObjectsDir(root), &report);
  return report;
}

}  // namespace modelhub
