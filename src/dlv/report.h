#ifndef MODELHUB_DLV_REPORT_H_
#define MODELHUB_DLV_REPORT_H_

#include <string>

#include "common/result.h"
#include "dlv/repository.h"

namespace modelhub {

/// Renders a self-contained HTML report of a repository — the "HTML front
/// end" of Sec. III-B's exploration queries: the version table (dlv list),
/// the lineage graph as inline SVG, and per-version training-log tables
/// with inline SVG loss curves and hyperparameters (dlv desc).
/// The output embeds no external resources.
Result<std::string> RenderHtmlReport(const Repository& repo);

/// Escapes &, <, >, " for safe embedding in HTML text and attributes.
std::string HtmlEscape(const std::string& text);

}  // namespace modelhub

#endif  // MODELHUB_DLV_REPORT_H_
