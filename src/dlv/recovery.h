#ifndef MODELHUB_DLV_RECOVERY_H_
#define MODELHUB_DLV_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace modelhub {

/// The commit journal: the intent record of a multi-file commit publish.
///
/// Repository::Commit writes every new artifact to a `*.tmp` path, records
/// this journal (CRC-framed) listing the pending `tmp -> final` renames
/// plus the CRC of the new catalog image, performs the renames, then
/// publishes the catalog with one atomic WriteFile — the commit point —
/// and finally deletes the journal. A crash anywhere in that protocol
/// leaves the journal behind; RecoverRepository replays or rolls back the
/// publish so Open always sees a fully-old or fully-new repository.
///
/// Identity checksums are taken over an artifact's *logical payload* — the
/// bytes under the CRC footer for framed artifacts, the whole file for raw
/// ones. The whole-file CRC of a framed file is useless as an identity:
/// appending a CRC-32 to its own message always yields the fixed residue
/// 0x2144DF1C, so every framed file would "match" every other.
struct JournalEntry {
  std::string tmp_path;    ///< Relative to the repository root.
  std::string final_path;  ///< Relative to the repository root.
  uint32_t crc = 0;        ///< CRC-32 of the artifact's logical payload.
  bool framed = false;     ///< Payload is wrapped in a CRC footer on disk.
};

struct CommitJournal {
  uint32_t new_catalog_crc = 0;  ///< CRC-32 of the new catalog's payload.
  std::vector<JournalEntry> entries;
};

std::string SerializeCommitJournal(const CommitJournal& journal);
Result<CommitJournal> ParseCommitJournal(const std::string& payload);

/// What RecoverRepository did, for logging and fsck reporting.
struct RecoveryReport {
  bool journal_found = false;
  bool rolled_forward = false;  ///< Commit point passed: publish completed.
  bool rolled_back = false;     ///< Commit point not reached: undone.
  std::vector<std::string> actions;  ///< Human-readable, one per action.

  bool clean() const { return !journal_found && actions.empty(); }
};

/// Brings the repository at `root` to a crash-consistent state:
///  - if a commit journal is present, completes the publish when the
///    catalog commit point was reached, otherwise rolls it back
///    (quarantining uncommitted artifacts that were already renamed);
///  - quarantines stray `*.tmp` droppings under the root, staging/ and
///    objects/ directories (torn or abandoned writes).
/// Idempotent; crashes during recovery are themselves recoverable.
Result<RecoveryReport> RecoverRepository(Env* env, const std::string& root);

/// Moves `path` into `<root>/quarantine/`, creating the directory and
/// uniquifying the name. Returns the quarantined path.
Result<std::string> QuarantineFile(Env* env, const std::string& root,
                                   const std::string& path);

}  // namespace modelhub

#endif  // MODELHUB_DLV_RECOVERY_H_
