#ifndef MODELHUB_DLV_FSCK_H_
#define MODELHUB_DLV_FSCK_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace modelhub {

struct FsckOptions {
  /// Move orphaned or corrupt loose files into <root>/quarantine/ instead
  /// of only reporting them. Referenced-but-corrupt artifacts are never
  /// moved (the catalog still points at them).
  bool quarantine = false;
};

/// Outcome of a full repository integrity scan.
struct FsckReport {
  /// Integrity violations: corrupt or missing artifacts, unresolvable
  /// delta chains, dangling catalog references, orphaned files.
  std::vector<std::string> defects;
  /// Mutations performed: crash-recovery replay and quarantine moves.
  std::vector<std::string> repairs;
  /// Informational lines (what was checked).
  std::vector<std::string> notes;

  bool clean() const { return defects.empty(); }
  std::string ToString() const;
};

/// `dlv fsck` — exhaustive integrity check of the repository at `root`:
///
///  - replays or rolls back an interrupted commit publish (as Open does);
///  - verifies the catalog's CRC frame and parses every table;
///  - checks every staged snapshot's file exists, is CRC-clean and parses;
///  - opens the PAS archive (if any snapshots are archived), verifies
///    every chunk's CRC and that every delta chain resolves, and checks
///    every archived snapshot is present in the manifest;
///  - verifies every referenced object's size and CRC against its
///    content-addressed name;
///  - reports dangling lineage references and orphaned files in staging/,
///    objects/ and pas/.
///
/// Returns an error Status only when `root` holds no repository; all
/// integrity problems are reported via FsckReport::defects.
Result<FsckReport> RunFsck(Env* env, const std::string& root,
                           const FsckOptions& options = {});

}  // namespace modelhub

#endif  // MODELHUB_DLV_FSCK_H_
