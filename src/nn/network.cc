#include "nn/network.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "nn/gemm.h"

namespace modelhub {

namespace {

/// Row-wise softmax over the per-sample flattened vector.
void SoftmaxInPlace(Tensor* t) {
  const int64_t n = t->n();
  const int64_t ss = t->SampleSize();
  for (int64_t i = 0; i < n; ++i) {
    float* row = t->data().data() + i * ss;
    float max_v = row[0];
    for (int64_t j = 1; j < ss; ++j) max_v = std::max(max_v, row[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < ss; ++j) {
      row[j] = std::exp(row[j] - max_v);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t j = 0; j < ss; ++j) row[j] *= inv;
  }
}

}  // namespace

Result<Network> Network::Create(const NetworkDef& def) {
  MH_ASSIGN_OR_RETURN(std::vector<DagNodeShape> shapes, InferDagShapes(def));
  Network net;
  net.def_ = def;
  std::map<std::string, int> index_of;
  for (size_t i = 0; i < shapes.size(); ++i) {
    index_of[shapes[i].name] = static_cast<int>(i);
  }
  for (const auto& node_shape : shapes) {
    MH_ASSIGN_OR_RETURN(LayerDef node, def.GetNode(node_shape.name));
    LayerState layer;
    layer.def = node;
    layer.in_shape = node_shape.in;
    layer.out_shape = node_shape.out;
    const std::vector<std::string> preds = def.Prev(node_shape.name);
    if (preds.empty()) {
      layer.inputs = {-1};  // The source consumes the network input.
    } else {
      for (const auto& pred : preds) layer.inputs.push_back(index_of[pred]);
    }
    if (node.kind == LayerKind::kConv) {
      const int64_t fan_in = node_shape.in.c * node.kernel * node.kernel;
      layer.weight = FloatMatrix(node.num_output, fan_in);
      layer.bias = FloatMatrix(1, node.num_output);
      layer.grad_weight = FloatMatrix(node.num_output, fan_in);
      layer.grad_bias = FloatMatrix(1, node.num_output);
      layer.vel_weight = FloatMatrix(node.num_output, fan_in);
      layer.vel_bias = FloatMatrix(1, node.num_output);
    } else if (node.kind == LayerKind::kFull) {
      const int64_t fan_in =
          node_shape.in.c * node_shape.in.h * node_shape.in.w;
      layer.weight = FloatMatrix(node.num_output, fan_in);
      layer.bias = FloatMatrix(1, node.num_output);
      layer.grad_weight = FloatMatrix(node.num_output, fan_in);
      layer.grad_bias = FloatMatrix(1, node.num_output);
      layer.vel_weight = FloatMatrix(node.num_output, fan_in);
      layer.vel_bias = FloatMatrix(1, node.num_output);
    }
    net.layers_.push_back(std::move(layer));
  }
  if (net.layers_.empty()) {
    return Status::InvalidArgument("network has no layers");
  }
  // Locate the unique sink (InferDagShapes guarantees exactly one).
  for (size_t i = 0; i < net.layers_.size(); ++i) {
    if (def.Next(net.layers_[i].def.name).empty()) {
      net.sink_index_ = static_cast<int>(i);
    }
  }
  const NodeShape& last =
      net.layers_[static_cast<size_t>(net.sink_index_)].out_shape;
  net.num_outputs_ = last.c * last.h * last.w;
  net.ends_in_softmax_ =
      net.layers_[static_cast<size_t>(net.sink_index_)].def.kind ==
      LayerKind::kSoftmax;
  return net;
}

int64_t Network::ParameterCount() const {
  int64_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.weight.size() + layer.bias.size();
  }
  return total;
}

void Network::InitializeWeights(Rng* rng) {
  for (auto& layer : layers_) {
    if (layer.weight.empty()) continue;
    const float stddev =
        std::sqrt(2.0f / static_cast<float>(layer.weight.cols()));
    layer.weight.FillGaussian(rng, stddev);
    layer.bias.Fill(0.0f);
    layer.vel_weight.Fill(0.0f);
    layer.vel_bias.Fill(0.0f);
  }
}

std::vector<NamedParam> Network::GetParameters() const {
  std::vector<NamedParam> out;
  for (const auto& layer : layers_) {
    if (layer.weight.empty()) continue;
    out.push_back({layer.def.name + ".W", layer.weight});
    out.push_back({layer.def.name + ".b", layer.bias});
  }
  return out;
}

std::vector<NamedParam> Network::GetGradients() const {
  std::vector<NamedParam> out;
  for (const auto& layer : layers_) {
    if (layer.weight.empty()) continue;
    out.push_back({layer.def.name + ".W", layer.grad_weight});
    out.push_back({layer.def.name + ".b", layer.grad_bias});
  }
  return out;
}

Status Network::SetParameters(const std::vector<NamedParam>& params) {
  for (const auto& param : params) {
    const size_t dot = param.name.rfind('.');
    if (dot == std::string::npos) {
      return Status::InvalidArgument("bad parameter name: " + param.name);
    }
    const std::string layer_name = param.name.substr(0, dot);
    const std::string part = param.name.substr(dot + 1);
    bool found = false;
    for (auto& layer : layers_) {
      if (layer.def.name != layer_name) continue;
      FloatMatrix* target = nullptr;
      if (part == "W") {
        target = &layer.weight;
      } else if (part == "b") {
        target = &layer.bias;
      } else {
        return Status::InvalidArgument("bad parameter part: " + param.name);
      }
      if (target->rows() != param.value.rows() ||
          target->cols() != param.value.cols()) {
        return Status::InvalidArgument("shape mismatch for " + param.name);
      }
      *target = param.value;
      found = true;
      break;
    }
    if (!found) return Status::NotFound("no such parameter: " + param.name);
  }
  return Status::OK();
}

Status Network::ForwardLayer(const LayerState& layer, const Tensor& in,
                             Tensor* out, Scratch* scratch, Rng* rng) const {
  const LayerDef& d = layer.def;
  const NodeShape& os = layer.out_shape;
  const int64_t batch = in.n();
  switch (d.kind) {
    case LayerKind::kConv: {
      // im2col + GEMM lowering (the caffe strategy): per sample,
      // out[OC, OH*OW] = W[OC, C*K*K] * cols[C*K*K, OH*OW] + bias.
      *out = Tensor(batch, os.c, os.h, os.w);
      const int64_t ic = layer.in_shape.c;
      const int64_t ih = layer.in_shape.h;
      const int64_t iw = layer.in_shape.w;
      const int64_t k = d.kernel;
      const int64_t patch = ic * k * k;
      const int64_t out_area = os.h * os.w;
      std::vector<float> cols(static_cast<size_t>(patch * out_area));
      for (int64_t n = 0; n < batch; ++n) {
        Im2Col(in.data().data() + n * in.SampleSize(), ic, ih, iw, k,
               d.stride, d.pad, os.h, os.w, cols.data());
        float* out_sample = out->data().data() + n * out->SampleSize();
        for (int64_t oc = 0; oc < os.c; ++oc) {
          const float bias = layer.bias.At(0, oc);
          for (int64_t pos = 0; pos < out_area; ++pos) {
            out_sample[oc * out_area + pos] = bias;
          }
        }
        GemmNN(layer.weight.data().data(), cols.data(), out_sample, os.c,
               patch, out_area);
      }
      break;
    }
    case LayerKind::kPool: {
      *out = Tensor(batch, os.c, os.h, os.w);
      const int64_t k = d.kernel;
      const int64_t ih = layer.in_shape.h;
      const int64_t iw = layer.in_shape.w;
      const bool is_max = d.pool_mode == PoolMode::kMax;
      if (scratch != nullptr && is_max) {
        scratch->pool_argmax.assign(
            static_cast<size_t>(batch * os.c * os.h * os.w), 0);
      }
      for (int64_t n = 0; n < batch; ++n) {
        for (int64_t c = 0; c < os.c; ++c) {
          for (int64_t oh = 0; oh < os.h; ++oh) {
            for (int64_t ow = 0; ow < os.w; ++ow) {
              if (is_max) {
                float best = -std::numeric_limits<float>::infinity();
                int32_t best_idx = 0;
                for (int64_t kh = 0; kh < k; ++kh) {
                  const int64_t y = oh * d.stride + kh;
                  if (y >= ih) continue;
                  for (int64_t kw = 0; kw < k; ++kw) {
                    const int64_t x = ow * d.stride + kw;
                    if (x >= iw) continue;
                    const float v = in.At(n, c, y, x);
                    if (v > best) {
                      best = v;
                      best_idx = static_cast<int32_t>((c * ih + y) * iw + x);
                    }
                  }
                }
                out->At(n, c, oh, ow) = best;
                if (scratch != nullptr) {
                  scratch->pool_argmax[static_cast<size_t>(
                      ((n * os.c + c) * os.h + oh) * os.w + ow)] = best_idx;
                }
              } else {
                double acc = 0.0;
                for (int64_t kh = 0; kh < k; ++kh) {
                  for (int64_t kw = 0; kw < k; ++kw) {
                    const int64_t y = oh * d.stride + kh;
                    const int64_t x = ow * d.stride + kw;
                    if (y < ih && x < iw) acc += in.At(n, c, y, x);
                  }
                }
                out->At(n, c, oh, ow) =
                    static_cast<float>(acc / static_cast<double>(k * k));
              }
            }
          }
        }
      }
      break;
    }
    case LayerKind::kFull: {
      *out = Tensor(batch, os.c, 1, 1);
      const int64_t fan_in = in.SampleSize();
      for (int64_t n = 0; n < batch; ++n) {
        const float* x = in.data().data() + n * fan_in;
        for (int64_t j = 0; j < os.c; ++j) {
          double acc = layer.bias.At(0, j);
          const float* w = layer.weight.data().data() + j * fan_in;
          for (int64_t i = 0; i < fan_in; ++i) {
            acc += static_cast<double>(w[i]) * x[i];
          }
          out->At(n, j, 0, 0) = static_cast<float>(acc);
        }
      }
      break;
    }
    case LayerKind::kReLU: {
      *out = in;
      for (float& v : out->data()) v = std::max(v, 0.0f);
      break;
    }
    case LayerKind::kSigmoid: {
      *out = in;
      for (float& v : out->data()) v = 1.0f / (1.0f + std::exp(-v));
      break;
    }
    case LayerKind::kTanh: {
      *out = in;
      for (float& v : out->data()) v = std::tanh(v);
      break;
    }
    case LayerKind::kSoftmax: {
      *out = in;
      SoftmaxInPlace(out);
      break;
    }
    case LayerKind::kFlatten: {
      *out = Tensor(batch, os.c, 1, 1);
      out->data() = in.data();
      break;
    }
    case LayerKind::kDropout: {
      *out = in;
      if (scratch != nullptr) {
        if (rng == nullptr) {
          return Status::InvalidArgument("dropout training requires an Rng");
        }
        const float keep = 1.0f - d.dropout_ratio;
        const float scale = 1.0f / keep;
        scratch->dropout_mask.assign(out->data().size(), 0);
        for (size_t i = 0; i < out->data().size(); ++i) {
          if (rng->Bernoulli(keep)) {
            scratch->dropout_mask[i] = 1;
            out->data()[i] *= scale;
          } else {
            out->data()[i] = 0.0f;
          }
        }
      }
      break;
    }
    case LayerKind::kLRN: {
      *out = in;
      const int64_t channels = layer.in_shape.c;
      const int64_t hw = layer.in_shape.h * layer.in_shape.w;
      const int64_t half = d.lrn_local_size / 2;
      if (scratch != nullptr) {
        scratch->lrn_scale.assign(in.data().size(), 0.0f);
      }
      for (int64_t n = 0; n < batch; ++n) {
        for (int64_t pos = 0; pos < hw; ++pos) {
          for (int64_t c = 0; c < channels; ++c) {
            double sum_sq = 0.0;
            for (int64_t j = std::max<int64_t>(0, c - half);
                 j <= std::min(channels - 1, c + half); ++j) {
              const float v = in.data()[(n * channels + j) * hw + pos];
              sum_sq += static_cast<double>(v) * v;
            }
            const double scale =
                d.lrn_k + d.lrn_alpha / static_cast<double>(d.lrn_local_size) *
                              sum_sq;
            const size_t idx =
                static_cast<size_t>((n * channels + c) * hw + pos);
            out->data()[idx] = static_cast<float>(
                in.data()[idx] * std::pow(scale, -d.lrn_beta));
            if (scratch != nullptr) {
              scratch->lrn_scale[idx] = static_cast<float>(scale);
            }
          }
        }
      }
      break;
    }
    case LayerKind::kInput:
      *out = in;
      break;
    case LayerKind::kEltwiseAdd:
      return Status::Internal("eltwise add is executed by the DAG driver");
  }
  return Status::OK();
}

Status Network::BackwardLayer(LayerState* layer, const Scratch& scratch,
                              const Tensor& dout, Tensor* din) {
  const LayerDef& d = layer->def;
  const Tensor& in = scratch.in;
  const Tensor& out = scratch.out;
  const int64_t batch = in.n();
  switch (d.kind) {
    case LayerKind::kConv: {
      // Adjoints of the im2col lowering:
      //   dW += dout[OC, OH*OW] * cols^T          (GemmNT)
      //   db += row sums of dout
      //   dcols = W^T * dout, din += col2im(dcols) (GemmTN + scatter)
      *din = Tensor(batch, layer->in_shape.c, layer->in_shape.h,
                    layer->in_shape.w);
      const int64_t ic = layer->in_shape.c;
      const int64_t ih = layer->in_shape.h;
      const int64_t iw = layer->in_shape.w;
      const int64_t k = d.kernel;
      const NodeShape& os = layer->out_shape;
      const int64_t patch = ic * k * k;
      const int64_t out_area = os.h * os.w;
      std::vector<float> cols(static_cast<size_t>(patch * out_area));
      std::vector<float> dcols(static_cast<size_t>(patch * out_area));
      for (int64_t n = 0; n < batch; ++n) {
        const float* dout_sample =
            dout.data().data() + n * dout.SampleSize();
        for (int64_t oc = 0; oc < os.c; ++oc) {
          float acc = 0.0f;
          for (int64_t pos = 0; pos < out_area; ++pos) {
            acc += dout_sample[oc * out_area + pos];
          }
          layer->grad_bias.At(0, oc) += acc;
        }
        Im2Col(in.data().data() + n * in.SampleSize(), ic, ih, iw, k,
               d.stride, d.pad, os.h, os.w, cols.data());
        GemmNT(dout_sample, cols.data(), layer->grad_weight.data().data(),
               os.c, out_area, patch);
        std::fill(dcols.begin(), dcols.end(), 0.0f);
        GemmTN(layer->weight.data().data(), dout_sample, dcols.data(), patch,
               os.c, out_area);
        Col2ImAccumulate(dcols.data(), ic, ih, iw, k, d.stride, d.pad, os.h,
                         os.w, din->data().data() + n * din->SampleSize());
      }
      break;
    }
    case LayerKind::kPool: {
      *din = Tensor(batch, layer->in_shape.c, layer->in_shape.h,
                    layer->in_shape.w);
      const NodeShape& os = layer->out_shape;
      const int64_t k = d.kernel;
      const int64_t ih = layer->in_shape.h;
      const int64_t iw = layer->in_shape.w;
      const int64_t ss = din->SampleSize();
      for (int64_t n = 0; n < batch; ++n) {
        for (int64_t c = 0; c < os.c; ++c) {
          for (int64_t oh = 0; oh < os.h; ++oh) {
            for (int64_t ow = 0; ow < os.w; ++ow) {
              const float g = dout.At(n, c, oh, ow);
              if (d.pool_mode == PoolMode::kMax) {
                const int32_t idx = scratch.pool_argmax[static_cast<size_t>(
                    ((n * os.c + c) * os.h + oh) * os.w + ow)];
                din->data()[n * ss + idx] += g;
              } else {
                const float share = g / static_cast<float>(k * k);
                for (int64_t kh = 0; kh < k; ++kh) {
                  for (int64_t kw = 0; kw < k; ++kw) {
                    const int64_t y = oh * d.stride + kh;
                    const int64_t x = ow * d.stride + kw;
                    if (y < ih && x < iw) din->At(n, c, y, x) += share;
                  }
                }
              }
            }
          }
        }
      }
      break;
    }
    case LayerKind::kFull: {
      const int64_t fan_in = in.SampleSize();
      const int64_t fan_out = layer->out_shape.c;
      *din = Tensor(batch, layer->in_shape.c, layer->in_shape.h,
                    layer->in_shape.w);
      for (int64_t n = 0; n < batch; ++n) {
        const float* x = in.data().data() + n * fan_in;
        float* dx = din->data().data() + n * fan_in;
        for (int64_t j = 0; j < fan_out; ++j) {
          const float g = dout.data()[n * fan_out + j];
          if (g == 0.0f) continue;
          layer->grad_bias.At(0, j) += g;
          float* dw = layer->grad_weight.data().data() + j * fan_in;
          const float* w = layer->weight.data().data() + j * fan_in;
          for (int64_t i = 0; i < fan_in; ++i) {
            dw[i] += g * x[i];
            dx[i] += g * w[i];
          }
        }
      }
      break;
    }
    case LayerKind::kReLU: {
      *din = dout;
      for (size_t i = 0; i < din->data().size(); ++i) {
        if (out.data()[i] <= 0.0f) din->data()[i] = 0.0f;
      }
      break;
    }
    case LayerKind::kSigmoid: {
      *din = dout;
      for (size_t i = 0; i < din->data().size(); ++i) {
        const float y = out.data()[i];
        din->data()[i] *= y * (1.0f - y);
      }
      break;
    }
    case LayerKind::kTanh: {
      *din = dout;
      for (size_t i = 0; i < din->data().size(); ++i) {
        const float y = out.data()[i];
        din->data()[i] *= 1.0f - y * y;
      }
      break;
    }
    case LayerKind::kSoftmax: {
      // Generic softmax Jacobian: dx = y * (dy - sum(dy * y)).
      *din = dout;
      const int64_t ss = out.SampleSize();
      for (int64_t n = 0; n < batch; ++n) {
        const float* y = out.data().data() + n * ss;
        float* dx = din->data().data() + n * ss;
        double dot = 0.0;
        for (int64_t j = 0; j < ss; ++j) dot += dx[j] * y[j];
        for (int64_t j = 0; j < ss; ++j) {
          dx[j] = y[j] * (dx[j] - static_cast<float>(dot));
        }
      }
      break;
    }
    case LayerKind::kFlatten: {
      *din = Tensor(batch, layer->in_shape.c, layer->in_shape.h,
                    layer->in_shape.w);
      din->data() = dout.data();
      break;
    }
    case LayerKind::kDropout: {
      *din = dout;
      const float scale = 1.0f / (1.0f - d.dropout_ratio);
      for (size_t i = 0; i < din->data().size(); ++i) {
        din->data()[i] =
            scratch.dropout_mask[i] ? din->data()[i] * scale : 0.0f;
      }
      break;
    }
    case LayerKind::kLRN: {
      *din = dout;
      const int64_t channels = layer->in_shape.c;
      const int64_t hw = layer->in_shape.h * layer->in_shape.w;
      const int64_t half = d.lrn_local_size / 2;
      const float ratio =
          2.0f * d.lrn_alpha * d.lrn_beta / static_cast<float>(d.lrn_local_size);
      for (int64_t n = 0; n < batch; ++n) {
        for (int64_t pos = 0; pos < hw; ++pos) {
          for (int64_t c = 0; c < channels; ++c) {
            const size_t idx =
                static_cast<size_t>((n * channels + c) * hw + pos);
            double acc = dout.data()[idx] *
                         std::pow(scratch.lrn_scale[idx], -d.lrn_beta);
            // Cross terms: every window j containing channel c.
            double cross = 0.0;
            for (int64_t j = std::max<int64_t>(0, c - half);
                 j <= std::min(channels - 1, c + half); ++j) {
              const size_t jdx =
                  static_cast<size_t>((n * channels + j) * hw + pos);
              cross += dout.data()[jdx] * out.data()[jdx] /
                       scratch.lrn_scale[jdx];
            }
            acc -= ratio * in.data()[idx] * cross;
            din->data()[idx] = static_cast<float>(acc);
          }
        }
      }
      break;
    }
    case LayerKind::kInput:
      *din = dout;
      break;
    case LayerKind::kEltwiseAdd:
      return Status::Internal("eltwise add is executed by the DAG driver");
  }
  return Status::OK();
}

Status Network::Forward(const Tensor& input, Tensor* output) const {
  if (input.c() != def_.in_channels() || input.h() != def_.in_height() ||
      input.w() != def_.in_width()) {
    return Status::InvalidArgument("Forward: input shape mismatch, got " +
                                   input.ShapeString());
  }
  std::vector<Tensor> outputs(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    const LayerState& layer = layers_[i];
    if (layer.def.kind == LayerKind::kEltwiseAdd) {
      const Tensor& a = outputs[static_cast<size_t>(layer.inputs[0])];
      const Tensor& b = outputs[static_cast<size_t>(layer.inputs[1])];
      Tensor sum = a;
      for (size_t k = 0; k < sum.data().size(); ++k) {
        sum.data()[k] += b.data()[k];
      }
      outputs[i] = std::move(sum);
      continue;
    }
    const Tensor& in =
        layer.inputs[0] < 0 ? input
                            : outputs[static_cast<size_t>(layer.inputs[0])];
    MH_RETURN_IF_ERROR(ForwardLayer(layer, in, &outputs[i],
                                    /*scratch=*/nullptr, /*rng=*/nullptr));
  }
  *output = std::move(outputs[static_cast<size_t>(sink_index_)]);
  return Status::OK();
}

Result<std::vector<int>> Network::Predict(const Tensor& input) const {
  Tensor out;
  MH_RETURN_IF_ERROR(Forward(input, &out));
  std::vector<int> labels(static_cast<size_t>(input.n()));
  const int64_t ss = out.SampleSize();
  for (int64_t n = 0; n < input.n(); ++n) {
    const float* row = out.data().data() + n * ss;
    labels[static_cast<size_t>(n)] = static_cast<int>(
        std::max_element(row, row + ss) - row);
  }
  return labels;
}

Result<double> Network::Accuracy(const Tensor& input,
                                 const std::vector<int>& labels) const {
  if (static_cast<int64_t>(labels.size()) != input.n()) {
    return Status::InvalidArgument("Accuracy: label count mismatch");
  }
  MH_ASSIGN_OR_RETURN(std::vector<int> predicted, Predict(input));
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predicted[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Result<double> Network::ForwardBackward(const Tensor& input,
                                        const std::vector<int>& labels,
                                        Rng* rng) {
  const int64_t batch = input.n();
  if (static_cast<int64_t>(labels.size()) != batch) {
    return Status::InvalidArgument("ForwardBackward: label count mismatch");
  }
  std::vector<Scratch> scratches(layers_.size());
  std::vector<Tensor> outputs(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    const LayerState& layer = layers_[i];
    if (layer.def.kind == LayerKind::kEltwiseAdd) {
      const Tensor& a = outputs[static_cast<size_t>(layer.inputs[0])];
      const Tensor& b = outputs[static_cast<size_t>(layer.inputs[1])];
      Tensor sum = a;
      for (size_t k = 0; k < sum.data().size(); ++k) {
        sum.data()[k] += b.data()[k];
      }
      outputs[i] = sum;
      scratches[i].out = std::move(sum);
      continue;
    }
    const Tensor& in =
        layer.inputs[0] < 0 ? input
                            : outputs[static_cast<size_t>(layer.inputs[0])];
    scratches[i].in = in;
    MH_RETURN_IF_ERROR(
        ForwardLayer(layer, in, &outputs[i], &scratches[i], rng));
    scratches[i].out = outputs[i];
  }
  Tensor current = outputs[static_cast<size_t>(sink_index_)];

  // Softmax cross-entropy loss. If the chain ends in softmax, `current`
  // already holds probabilities and backprop starts below the softmax node
  // with the fused (p - y) / N gradient; otherwise treat the final output
  // as logits and apply softmax here.
  Tensor probs = current;
  if (!ends_in_softmax_) SoftmaxInPlace(&probs);
  const int64_t classes = probs.SampleSize();
  double loss = 0.0;
  Tensor grad(batch, probs.c(), probs.h(), probs.w());
  for (int64_t n = 0; n < batch; ++n) {
    const int label = labels[static_cast<size_t>(n)];
    if (label < 0 || label >= classes) {
      return Status::InvalidArgument("label out of range");
    }
    const float p = std::max(probs.data()[n * classes + label], 1e-12f);
    loss -= std::log(static_cast<double>(p));
    for (int64_t j = 0; j < classes; ++j) {
      const float y = (j == label) ? 1.0f : 0.0f;
      grad.data()[n * classes + j] =
          (probs.data()[n * classes + j] - y) / static_cast<float>(batch);
    }
  }
  loss /= static_cast<double>(batch);

  // Zero gradients, then backprop.
  for (auto& layer : layers_) {
    if (!layer.weight.empty()) {
      layer.grad_weight.Fill(0.0f);
      layer.grad_bias.Fill(0.0f);
    }
  }
  // Per-node upstream gradients, accumulated across fan-out.
  std::vector<Tensor> douts(layers_.size());
  auto accumulate = [](Tensor* acc, const Tensor& t) {
    if (acc->empty()) {
      *acc = t;
    } else {
      for (size_t k = 0; k < acc->data().size(); ++k) {
        acc->data()[k] += t.data()[k];
      }
    }
  };
  // Seed at the sink; with a trailing softmax the fused softmax+CE
  // gradient is injected one layer below instead.
  int seed_index = sink_index_;
  if (ends_in_softmax_) {
    seed_index = layers_[static_cast<size_t>(sink_index_)].inputs[0];
    if (seed_index < 0) return Status::InvalidArgument("softmax-only net");
  }
  douts[static_cast<size_t>(seed_index)] = std::move(grad);
  for (int i = seed_index; i >= 0; --i) {
    Tensor& dout = douts[static_cast<size_t>(i)];
    if (dout.empty()) continue;  // Above the seed or dead branch.
    LayerState& layer = layers_[static_cast<size_t>(i)];
    if (layer.def.kind == LayerKind::kEltwiseAdd) {
      // d/dx (a + b) passes the gradient to both inputs unchanged.
      for (int input : layer.inputs) {
        accumulate(&douts[static_cast<size_t>(input)], dout);
      }
      continue;
    }
    if (layer.inputs[0] < 0) continue;  // Source: nothing upstream.
    Tensor din;
    MH_RETURN_IF_ERROR(BackwardLayer(&layer, scratches[static_cast<size_t>(i)],
                                     dout, &din));
    accumulate(&douts[static_cast<size_t>(layer.inputs[0])], din);
  }
  // The source layer still needs its parameter gradients even though no
  // upstream din is consumed.
  {
    const int i = 0;
    LayerState& layer = layers_[static_cast<size_t>(i)];
    Tensor& dout = douts[static_cast<size_t>(i)];
    if (!dout.empty() && layer.inputs[0] < 0 &&
        layer.def.kind != LayerKind::kEltwiseAdd) {
      Tensor din;
      MH_RETURN_IF_ERROR(
          BackwardLayer(&layer, scratches[static_cast<size_t>(i)], dout,
                        &din));
    }
  }
  return loss;
}

void Network::SgdUpdate(float learning_rate, float momentum,
                        float weight_decay) {
  for (auto& layer : layers_) {
    if (layer.weight.empty()) continue;
    for (int64_t i = 0; i < layer.weight.size(); ++i) {
      float& v = layer.vel_weight.data()[static_cast<size_t>(i)];
      const float g = layer.grad_weight.data()[static_cast<size_t>(i)] +
                      weight_decay * layer.weight.data()[static_cast<size_t>(i)];
      v = momentum * v - learning_rate * g;
      layer.weight.data()[static_cast<size_t>(i)] += v;
    }
    for (int64_t i = 0; i < layer.bias.size(); ++i) {
      float& v = layer.vel_bias.data()[static_cast<size_t>(i)];
      const float g = layer.grad_bias.data()[static_cast<size_t>(i)];
      v = momentum * v - learning_rate * g;
      layer.bias.data()[static_cast<size_t>(i)] += v;
    }
  }
}

}  // namespace modelhub
