#include "nn/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace modelhub {

Result<TrainResult> TrainNetwork(Network* net, const Dataset& dataset,
                                 const TrainOptions& options) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("training dataset is empty");
  }
  if (net->num_outputs() < dataset.num_classes) {
    return Status::InvalidArgument(
        "network has fewer outputs than dataset classes");
  }
  Rng rng(options.seed);
  TrainResult result;
  float lr = options.base_learning_rate;
  for (int64_t iter = 1; iter <= options.iterations; ++iter) {
    // Sample a random minibatch.
    std::vector<int64_t> indices(static_cast<size_t>(options.batch_size));
    for (auto& idx : indices) {
      idx = static_cast<int64_t>(rng.Uniform(dataset.size()));
    }
    Tensor batch;
    std::vector<int> labels;
    dataset.Gather(indices, &batch, &labels);

    MH_ASSIGN_OR_RETURN(const double loss,
                        net->ForwardBackward(batch, labels, &rng));
    if (!std::isfinite(loss)) {
      return Status::FailedPrecondition(
          "training diverged (non-finite loss) at iteration " +
          std::to_string(iter) + "; lower the learning rate");
    }
    net->SgdUpdate(lr, options.momentum, options.weight_decay);

    if (options.lr_gamma != 1.0f && options.lr_step > 0 &&
        iter % options.lr_step == 0) {
      lr *= options.lr_gamma;
    }
    const bool last = iter == options.iterations;
    if (last || (options.log_every > 0 && iter % options.log_every == 0)) {
      TrainLogEntry entry;
      entry.iteration = iter;
      entry.loss = loss;
      entry.learning_rate = lr;
      MH_ASSIGN_OR_RETURN(entry.train_accuracy,
                          net->Accuracy(batch, labels));
      result.log.push_back(entry);
      result.final_loss = loss;
    }
    if (last || (options.snapshot_every > 0 &&
                 iter % options.snapshot_every == 0)) {
      TrainSnapshot snapshot;
      snapshot.iteration = iter;
      snapshot.params = net->GetParameters();
      result.snapshots.push_back(std::move(snapshot));
    }
  }
  MH_ASSIGN_OR_RETURN(result.final_accuracy,
                      EvaluateAccuracy(*net, dataset));
  return result;
}

Result<double> EvaluateAccuracy(const Network& net, const Dataset& dataset,
                                int64_t batch_size) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("evaluation dataset is empty");
  }
  int64_t correct = 0;
  for (int64_t start = 0; start < dataset.size(); start += batch_size) {
    const int64_t end = std::min(start + batch_size, dataset.size());
    std::vector<int64_t> indices;
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    Tensor batch;
    std::vector<int> labels;
    dataset.Gather(indices, &batch, &labels);
    MH_ASSIGN_OR_RETURN(std::vector<int> predicted, net.Predict(batch));
    for (size_t i = 0; i < labels.size(); ++i) {
      if (predicted[i] == labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace modelhub
