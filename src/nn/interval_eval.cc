#include "nn/interval_eval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace modelhub {

namespace {

/// Interval of x^2 given x in [lo, hi].
Interval SquareInterval(const Interval& x) {
  const float a = x.lo * x.lo;
  const float b = x.hi * x.hi;
  if (x.lo >= 0.0f) return Interval(a, b);
  if (x.hi <= 0.0f) return Interval(b, a);
  return Interval(0.0f, std::max(a, b));
}

Interval At(const IntervalTensor& t, int64_t n, int64_t c, int64_t h,
            int64_t w) {
  return Interval(t.lo.At(n, c, h, w), t.hi.At(n, c, h, w));
}

void Set(IntervalTensor* t, int64_t n, int64_t c, int64_t h, int64_t w,
         const Interval& v) {
  t->lo.At(n, c, h, w) = v.lo;
  t->hi.At(n, c, h, w) = v.hi;
}

}  // namespace

Result<std::vector<std::vector<Interval>>> IntervalEvaluator::Forward(
    const Tensor& input,
    const std::map<std::string, IntervalMatrix>& bounds) const {
  const NetworkDef& def = net_->def();
  if (input.c() != def.in_channels() || input.h() != def.in_height() ||
      input.w() != def.in_width()) {
    return Status::InvalidArgument("IntervalForward: input shape mismatch");
  }
  const int64_t batch = input.n();
  const IntervalTensor input_interval = IntervalTensor::FromExact(input);

  const auto& layers = net_->layers_;
  std::vector<IntervalTensor> outputs(layers.size());
  for (size_t li = 0; li < layers.size(); ++li) {
    const Network::LayerState& layer = layers[li];
    const LayerDef& d = layer.def;
    const NodeShape& os = layer.out_shape;
    const bool is_last = static_cast<int>(li) == net_->sink_index_;
    const IntervalTensor& cur =
        layer.inputs[0] < 0
            ? input_interval
            : outputs[static_cast<size_t>(layer.inputs[0])];

    // Resolve (possibly interval) parameters.
    IntervalMatrix weight;
    IntervalMatrix bias;
    if (!layer.weight.empty()) {
      auto wit = bounds.find(d.name + ".W");
      if (wit != bounds.end()) {
        if (wit->second.rows() != layer.weight.rows() ||
            wit->second.cols() != layer.weight.cols()) {
          return Status::InvalidArgument("interval bound shape mismatch: " +
                                         d.name + ".W");
        }
        weight = wit->second;
      } else {
        weight = IntervalMatrix::FromExact(layer.weight);
      }
      auto bit = bounds.find(d.name + ".b");
      if (bit != bounds.end()) {
        if (bit->second.rows() != layer.bias.rows() ||
            bit->second.cols() != layer.bias.cols()) {
          return Status::InvalidArgument("interval bound shape mismatch: " +
                                         d.name + ".b");
        }
        bias = bit->second;
      } else {
        bias = IntervalMatrix::FromExact(layer.bias);
      }
    }

    IntervalTensor next(batch, os.c, os.h, os.w);
    switch (d.kind) {
      case LayerKind::kConv: {
        const int64_t ic = layer.in_shape.c;
        const int64_t ih = layer.in_shape.h;
        const int64_t iw = layer.in_shape.w;
        const int64_t k = d.kernel;
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t oc = 0; oc < os.c; ++oc) {
            for (int64_t oh = 0; oh < os.h; ++oh) {
              for (int64_t ow = 0; ow < os.w; ++ow) {
                Interval acc = bias.At(0, oc);
                for (int64_t c = 0; c < ic; ++c) {
                  for (int64_t kh = 0; kh < k; ++kh) {
                    const int64_t y = oh * d.stride + kh - d.pad;
                    if (y < 0 || y >= ih) continue;
                    for (int64_t kw = 0; kw < k; ++kw) {
                      const int64_t x = ow * d.stride + kw - d.pad;
                      if (x < 0 || x >= iw) continue;
                      acc = acc + weight.At(oc, (c * k + kh) * k + kw) *
                                      At(cur, n, c, y, x);
                    }
                  }
                }
                Set(&next, n, oc, oh, ow, acc);
              }
            }
          }
        }
        break;
      }
      case LayerKind::kFull: {
        const int64_t fan_in =
            layer.in_shape.c * layer.in_shape.h * layer.in_shape.w;
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t j = 0; j < os.c; ++j) {
            Interval acc = bias.At(0, j);
            for (int64_t i = 0; i < fan_in; ++i) {
              const Interval x(cur.lo.data()[n * fan_in + i],
                               cur.hi.data()[n * fan_in + i]);
              acc = acc + weight.At(j, i) * x;
            }
            Set(&next, n, j, 0, 0, acc);
          }
        }
        break;
      }
      case LayerKind::kPool: {
        const int64_t k = d.kernel;
        const int64_t ih = layer.in_shape.h;
        const int64_t iw = layer.in_shape.w;
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t c = 0; c < os.c; ++c) {
            for (int64_t oh = 0; oh < os.h; ++oh) {
              for (int64_t ow = 0; ow < os.w; ++ow) {
                if (d.pool_mode == PoolMode::kMax) {
                  float lo = -std::numeric_limits<float>::infinity();
                  float hi = -std::numeric_limits<float>::infinity();
                  for (int64_t kh = 0; kh < k; ++kh) {
                    const int64_t y = oh * d.stride + kh;
                    if (y >= ih) continue;
                    for (int64_t kw = 0; kw < k; ++kw) {
                      const int64_t x = ow * d.stride + kw;
                      if (x >= iw) continue;
                      lo = std::max(lo, cur.lo.At(n, c, y, x));
                      hi = std::max(hi, cur.hi.At(n, c, y, x));
                    }
                  }
                  Set(&next, n, c, oh, ow, Interval(lo, hi));
                } else {
                  Interval acc(0.0f, 0.0f);
                  for (int64_t kh = 0; kh < k; ++kh) {
                    for (int64_t kw = 0; kw < k; ++kw) {
                      const int64_t y = oh * d.stride + kh;
                      const int64_t x = ow * d.stride + kw;
                      if (y < ih && x < iw) {
                        acc = acc + At(cur, n, c, y, x);
                      }
                    }
                  }
                  const float inv = 1.0f / static_cast<float>(k * k);
                  Set(&next, n, c, oh, ow,
                      Interval(acc.lo * inv, acc.hi * inv));
                }
              }
            }
          }
        }
        break;
      }
      case LayerKind::kReLU:
        next = cur;
        for (auto& v : next.lo.data()) v = std::max(v, 0.0f);
        for (auto& v : next.hi.data()) v = std::max(v, 0.0f);
        break;
      case LayerKind::kSigmoid:
        next = cur;
        for (auto& v : next.lo.data()) v = 1.0f / (1.0f + std::exp(-v));
        for (auto& v : next.hi.data()) v = 1.0f / (1.0f + std::exp(-v));
        break;
      case LayerKind::kTanh:
        next = cur;
        for (auto& v : next.lo.data()) v = std::tanh(v);
        for (auto& v : next.hi.data()) v = std::tanh(v);
        break;
      case LayerKind::kSoftmax: {
        if (is_last) {
          // Order-preserving final layer: Lemma 4 on the logits is
          // equivalent; skip the transform.
          next = cur;
          break;
        }
        // Sound mid-chain softmax bounds: p_i is monotone increasing in
        // x_i and decreasing in every other logit.
        const int64_t ss = os.c * os.h * os.w;
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t i = 0; i < ss; ++i) {
            double denom_hi = 0.0;  // Maximizes p_i's denominator.
            double denom_lo = 0.0;
            const float xi_lo = cur.lo.data()[n * ss + i];
            const float xi_hi = cur.hi.data()[n * ss + i];
            for (int64_t j = 0; j < ss; ++j) {
              if (j == i) continue;
              denom_hi += std::exp(
                  static_cast<double>(cur.hi.data()[n * ss + j]) - xi_lo);
              denom_lo += std::exp(
                  static_cast<double>(cur.lo.data()[n * ss + j]) - xi_hi);
            }
            next.lo.data()[n * ss + i] =
                static_cast<float>(1.0 / (1.0 + denom_hi));
            next.hi.data()[n * ss + i] =
                static_cast<float>(1.0 / (1.0 + denom_lo));
          }
        }
        break;
      }
      case LayerKind::kFlatten:
        next.lo.data() = cur.lo.data();
        next.hi.data() = cur.hi.data();
        break;
      case LayerKind::kDropout:  // Identity at inference.
      case LayerKind::kInput:
        next = cur;
        break;
      case LayerKind::kLRN: {
        const int64_t channels = layer.in_shape.c;
        const int64_t hw = layer.in_shape.h * layer.in_shape.w;
        const int64_t half = d.lrn_local_size / 2;
        for (int64_t n = 0; n < batch; ++n) {
          for (int64_t pos = 0; pos < hw; ++pos) {
            for (int64_t c = 0; c < channels; ++c) {
              Interval sum_sq(0.0f, 0.0f);
              for (int64_t j = std::max<int64_t>(0, c - half);
                   j <= std::min(channels - 1, c + half); ++j) {
                const size_t jdx =
                    static_cast<size_t>((n * channels + j) * hw + pos);
                sum_sq = sum_sq + SquareInterval(Interval(
                                      cur.lo.data()[jdx], cur.hi.data()[jdx]));
              }
              const float a =
                  d.lrn_alpha / static_cast<float>(d.lrn_local_size);
              // scale >= k > 0; s^-beta is decreasing in scale.
              const Interval scale(d.lrn_k + a * sum_sq.lo,
                                   d.lrn_k + a * sum_sq.hi);
              const Interval s_pow(std::pow(scale.hi, -d.lrn_beta),
                                   std::pow(scale.lo, -d.lrn_beta));
              const size_t idx =
                  static_cast<size_t>((n * channels + c) * hw + pos);
              const Interval x(cur.lo.data()[idx], cur.hi.data()[idx]);
              const Interval y = x * s_pow;
              next.lo.data()[idx] = y.lo;
              next.hi.data()[idx] = y.hi;
            }
          }
        }
        break;
      }
      case LayerKind::kEltwiseAdd: {
        const IntervalTensor& a =
            outputs[static_cast<size_t>(layer.inputs[0])];
        const IntervalTensor& b =
            outputs[static_cast<size_t>(layer.inputs[1])];
        next = a;
        for (size_t k = 0; k < next.lo.data().size(); ++k) {
          next.lo.data()[k] += b.lo.data()[k];
          next.hi.data()[k] += b.hi.data()[k];
        }
        break;
      }
    }
    outputs[li] = std::move(next);
  }

  const IntervalTensor& cur =
      outputs[static_cast<size_t>(net_->sink_index_)];
  const int64_t out_size = cur.lo.SampleSize();
  std::vector<std::vector<Interval>> out(
      static_cast<size_t>(batch),
      std::vector<Interval>(static_cast<size_t>(out_size)));
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t j = 0; j < out_size; ++j) {
      out[static_cast<size_t>(n)][static_cast<size_t>(j)] =
          Interval(cur.lo.data()[n * out_size + j],
                   cur.hi.data()[n * out_size + j]);
    }
  }
  return out;
}

int IntervalEvaluator::DeterminedTopLabel(
    const std::vector<Interval>& outputs) {
  if (outputs.empty()) return -1;
  size_t best = 0;
  for (size_t i = 1; i < outputs.size(); ++i) {
    if (outputs[i].lo > outputs[best].lo) best = i;
  }
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i == best) continue;
    if (outputs[i].hi >= outputs[best].lo) return -1;
  }
  return static_cast<int>(best);
}

bool IntervalEvaluator::TopKDetermined(const std::vector<Interval>& outputs,
                                       int k) {
  const int n = static_cast<int>(outputs.size());
  if (k <= 0 || k >= n) return true;
  // Candidate top-k: the k classes with the largest lower bounds.
  std::vector<int> order(outputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](int a, int b) { return outputs[a].lo > outputs[b].lo; });
  float kth_lo = std::numeric_limits<float>::infinity();
  for (int i = 0; i < k; ++i) {
    kth_lo = std::min(kth_lo, outputs[order[static_cast<size_t>(i)]].lo);
  }
  float out_hi = -std::numeric_limits<float>::infinity();
  for (size_t i = static_cast<size_t>(k); i < outputs.size(); ++i) {
    out_hi = std::max(out_hi, outputs[order[i]].hi);
  }
  return kth_lo > out_hi;
}

}  // namespace modelhub
