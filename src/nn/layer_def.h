#ifndef MODELHUB_NN_LAYER_DEF_H_
#define MODELHUB_NN_LAYER_DEF_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace modelhub {

/// The unit-operator vocabulary of ModelHub network definitions. These are
/// the "Lego bricks" of Sec. II — logical layers, not tensor arithmetic
/// ops, matching the paper's choice of granularity.
enum class LayerKind : uint8_t {
  kInput = 0,
  kConv,
  kPool,
  kFull,     ///< Inner-product / fully-connected (caffe "ip").
  kReLU,
  kSigmoid,
  kTanh,
  kSoftmax,
  kFlatten,
  kDropout,
  kLRN,        ///< Cross-channel local response normalization.
  kEltwiseAdd, ///< Elementwise sum of two same-shape inputs (residual join).
};

enum class PoolMode : uint8_t { kMax = 0, kAvg = 1 };

/// Returns the canonical lowercase name ("conv", "pool", ...).
std::string_view LayerKindToString(LayerKind kind);

/// Parses a canonical name; InvalidArgument on unknown names.
Result<LayerKind> LayerKindFromString(std::string_view name);

/// True for layers with learnable parameters (W, b) — conv and full.
bool IsParametric(LayerKind kind);

/// A single node of a network definition: the layer kind plus its
/// hyperparameters H (Sec. II: a layer is (W, H, X) -> Y; W is learned, H
/// is given beforehand and lives here).
struct LayerDef {
  std::string name;
  LayerKind kind = LayerKind::kInput;

  // conv / full.
  int64_t num_output = 0;
  // conv / pool.
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t pad = 0;
  PoolMode pool_mode = PoolMode::kMax;
  // dropout.
  float dropout_ratio = 0.5f;
  // lrn.
  int64_t lrn_local_size = 5;
  float lrn_alpha = 1e-4f;
  float lrn_beta = 0.75f;
  float lrn_k = 1.0f;

  /// Serializes to the textual node attribute list used by NetworkDef
  /// ("conv k=5 s=1 p=0 n=20").
  std::string AttributesString() const;

  /// Validates the hyperparameters for this kind.
  Status Validate() const;

  bool operator==(const LayerDef& other) const;
};

/// Factory helpers used by the model zoo and tests.
LayerDef MakeConv(std::string name, int64_t num_output, int64_t kernel,
                  int64_t stride = 1, int64_t pad = 0);
LayerDef MakePool(std::string name, PoolMode mode, int64_t kernel,
                  int64_t stride);
LayerDef MakeFull(std::string name, int64_t num_output);
LayerDef MakeActivation(std::string name, LayerKind kind);
LayerDef MakeDropout(std::string name, float ratio);
LayerDef MakeLRN(std::string name, int64_t local_size = 5,
                 float alpha = 1e-4f, float beta = 0.75f, float k = 1.0f);
LayerDef MakeEltwiseAdd(std::string name);

}  // namespace modelhub

#endif  // MODELHUB_NN_LAYER_DEF_H_
