#ifndef MODELHUB_NN_ZOO_H_
#define MODELHUB_NN_ZOO_H_

#include <cstdint>

#include "nn/network_def.h"

namespace modelhub {

/// Reference architectures (Table I of the paper), at two scales:
///   * the paper-faithful definitions, used for parameter accounting; and
///   * "mini" variants sized so training runs in seconds on one CPU core,
///     used everywhere models are actually trained (substitution #5 in
///     DESIGN.md).

/// LeNet: (conv pool){2} full{2} softmax, for `classes`-way prediction on
/// 1 x 28 x 28 inputs. With the paper defaults this reproduces the 431k
/// parameter count of Table I.
NetworkDef LeNet(int64_t classes = 10);

/// A reduced LeNet for in-(28x28) synthetic tasks: same topology, fewer
/// filters. Trains to high accuracy within seconds.
NetworkDef MiniLeNet(int64_t classes = 10, int64_t image_size = 20);

/// AlexNet-style: (conv pool){2} (conv{2} pool){2}? — the Table I regular
/// expression is (Lconv Lpool){2} (Lconv{2} Lpool){2} Lip{3}; our variant
/// follows the canonical AlexNet layer list with LRN after early convs.
NetworkDef AlexNetStyle(int64_t classes = 1000);

/// VGG-16: (conv{2} pool){2} (conv{3} pool){3} full{3} (the standard VGG-16
/// configuration the paper measures).
NetworkDef Vgg16(int64_t classes = 1000);

/// A channel-scaled VGG-style chain for synthetic-modeler repositories:
/// `width_multiple` scales all channel counts.
NetworkDef MiniVgg(int64_t classes, int64_t image_size,
                   int64_t width_multiple = 1);

/// ResNet-style residual network (Table I): a conv stem, `blocks` residual
/// units (conv-relu-conv + identity skip via kEltwiseAdd, then relu), a
/// pool and a classifier. Channel count is constant so every skip is an
/// identity join.
NetworkDef ResNetStyle(int64_t classes = 1000, int64_t blocks = 16,
                       int64_t channels = 64);

/// A small trainable residual network for synthetic tasks.
NetworkDef MiniResNet(int64_t classes, int64_t image_size,
                      int64_t blocks = 2, int64_t channels = 8);

}  // namespace modelhub

#endif  // MODELHUB_NN_ZOO_H_
