#include "nn/layer_def.h"

#include <cstdio>

namespace modelhub {

std::string_view LayerKindToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kPool:
      return "pool";
    case LayerKind::kFull:
      return "full";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kSigmoid:
      return "sigmoid";
    case LayerKind::kTanh:
      return "tanh";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kFlatten:
      return "flatten";
    case LayerKind::kDropout:
      return "dropout";
    case LayerKind::kLRN:
      return "lrn";
    case LayerKind::kEltwiseAdd:
      return "add";
  }
  return "unknown";
}

Result<LayerKind> LayerKindFromString(std::string_view name) {
  for (LayerKind kind :
       {LayerKind::kInput, LayerKind::kConv, LayerKind::kPool,
        LayerKind::kFull, LayerKind::kReLU, LayerKind::kSigmoid,
        LayerKind::kTanh, LayerKind::kSoftmax, LayerKind::kFlatten,
        LayerKind::kDropout, LayerKind::kLRN, LayerKind::kEltwiseAdd}) {
    if (LayerKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown layer kind: " + std::string(name));
}

bool IsParametric(LayerKind kind) {
  return kind == LayerKind::kConv || kind == LayerKind::kFull;
}

std::string LayerDef::AttributesString() const {
  char buf[160];
  switch (kind) {
    case LayerKind::kConv:
      std::snprintf(buf, sizeof(buf), "n=%lld k=%lld s=%lld p=%lld",
                    static_cast<long long>(num_output),
                    static_cast<long long>(kernel),
                    static_cast<long long>(stride),
                    static_cast<long long>(pad));
      return buf;
    case LayerKind::kPool:
      std::snprintf(buf, sizeof(buf), "mode=%s k=%lld s=%lld",
                    pool_mode == PoolMode::kMax ? "max" : "avg",
                    static_cast<long long>(kernel),
                    static_cast<long long>(stride));
      return buf;
    case LayerKind::kFull:
      std::snprintf(buf, sizeof(buf), "n=%lld",
                    static_cast<long long>(num_output));
      return buf;
    case LayerKind::kDropout:
      std::snprintf(buf, sizeof(buf), "ratio=%g", dropout_ratio);
      return buf;
    case LayerKind::kLRN:
      std::snprintf(buf, sizeof(buf), "size=%lld alpha=%g beta=%g k0=%g",
                    static_cast<long long>(lrn_local_size), lrn_alpha,
                    lrn_beta, lrn_k);
      return buf;
    default:
      return "";
  }
}

Status LayerDef::Validate() const {
  if (name.empty()) return Status::InvalidArgument("layer has empty name");
  switch (kind) {
    case LayerKind::kConv:
      if (num_output <= 0 || kernel <= 0 || stride <= 0 || pad < 0) {
        return Status::InvalidArgument("conv " + name +
                                       ": bad hyperparameters");
      }
      break;
    case LayerKind::kPool:
      if (kernel <= 0 || stride <= 0) {
        return Status::InvalidArgument("pool " + name +
                                       ": bad hyperparameters");
      }
      break;
    case LayerKind::kFull:
      if (num_output <= 0) {
        return Status::InvalidArgument("full " + name + ": bad num_output");
      }
      break;
    case LayerKind::kDropout:
      if (dropout_ratio < 0.0f || dropout_ratio >= 1.0f) {
        return Status::InvalidArgument("dropout " + name + ": bad ratio");
      }
      break;
    case LayerKind::kLRN:
      if (lrn_local_size <= 0 || lrn_local_size % 2 == 0) {
        return Status::InvalidArgument("lrn " + name +
                                       ": local_size must be odd positive");
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

bool LayerDef::operator==(const LayerDef& other) const {
  return name == other.name && kind == other.kind &&
         num_output == other.num_output && kernel == other.kernel &&
         stride == other.stride && pad == other.pad &&
         pool_mode == other.pool_mode &&
         dropout_ratio == other.dropout_ratio &&
         lrn_local_size == other.lrn_local_size &&
         lrn_alpha == other.lrn_alpha && lrn_beta == other.lrn_beta &&
         lrn_k == other.lrn_k;
}

LayerDef MakeConv(std::string name, int64_t num_output, int64_t kernel,
                  int64_t stride, int64_t pad) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = LayerKind::kConv;
  def.num_output = num_output;
  def.kernel = kernel;
  def.stride = stride;
  def.pad = pad;
  return def;
}

LayerDef MakePool(std::string name, PoolMode mode, int64_t kernel,
                  int64_t stride) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = LayerKind::kPool;
  def.pool_mode = mode;
  def.kernel = kernel;
  def.stride = stride;
  return def;
}

LayerDef MakeFull(std::string name, int64_t num_output) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = LayerKind::kFull;
  def.num_output = num_output;
  return def;
}

LayerDef MakeActivation(std::string name, LayerKind kind) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = kind;
  return def;
}

LayerDef MakeDropout(std::string name, float ratio) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = LayerKind::kDropout;
  def.dropout_ratio = ratio;
  return def;
}

LayerDef MakeEltwiseAdd(std::string name) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = LayerKind::kEltwiseAdd;
  return def;
}

LayerDef MakeLRN(std::string name, int64_t local_size, float alpha,
                 float beta, float k) {
  LayerDef def;
  def.name = std::move(name);
  def.kind = LayerKind::kLRN;
  def.lrn_local_size = local_size;
  def.lrn_alpha = alpha;
  def.lrn_beta = beta;
  def.lrn_k = k;
  return def;
}

}  // namespace modelhub
