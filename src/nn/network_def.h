#ifndef MODELHUB_NN_NETWORK_DEF_H_
#define MODELHUB_NN_NETWORK_DEF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "nn/layer_def.h"

namespace modelhub {

/// The structural definition of a DNN: a named DAG of LayerDef nodes plus
/// the input shape. This is the "N" component of a model version (Sec.
/// III-A: Node(id, node, A) and Edge(from, to) tables) and the object DQL
/// slice/construct/mutate operate on. It carries no learned weights.
class NetworkDef {
 public:
  NetworkDef() = default;

  /// A network named `name` accepting C x H x W single-sample inputs.
  NetworkDef(std::string name, int64_t in_channels, int64_t in_height,
             int64_t in_width);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int64_t in_channels() const { return in_channels_; }
  int64_t in_height() const { return in_height_; }
  int64_t in_width() const { return in_width_; }

  const std::vector<LayerDef>& nodes() const { return nodes_; }
  const std::vector<std::pair<std::string, std::string>>& edges() const {
    return edges_;
  }

  /// Appends `layer` and connects it after the current chain tail (the
  /// common way architectures are built). Fails on duplicate names.
  Status Append(LayerDef layer);

  /// Adds a node without connecting it.
  Status AddNode(LayerDef layer);

  /// Adds a directed edge between existing nodes.
  Status AddEdge(const std::string& from, const std::string& to);

  /// Returns the layer definition for `name`.
  Result<LayerDef> GetNode(const std::string& name) const;

  bool HasNode(const std::string& name) const;

  /// Successor / predecessor node names (the DQL `next` / `prev`
  /// attributes).
  std::vector<std::string> Next(const std::string& name) const;
  std::vector<std::string> Prev(const std::string& name) const;

  /// Names of nodes matching an anchored POSIX-extended regex — the DQL
  /// selector operator m["conv[1,3,5]"]. Returns names in insertion order.
  Result<std::vector<std::string>> Select(const std::string& pattern) const;

  /// Inserts `layer` on the outgoing edge(s) of `after`: after -> X becomes
  /// after -> layer -> X (the DQL mutate/insert operation). If `after` has
  /// no outgoing edge the new node becomes the chain tail.
  Status InsertAfter(const std::string& after, LayerDef layer);

  /// Removes a node, reconnecting each predecessor to each successor (the
  /// DQL delete operation).
  Status DeleteNode(const std::string& name);

  /// Extracts the sub-network of all paths from `start` to `end` inclusive
  /// (the DQL slice operator). Input shape is preserved.
  Result<NetworkDef> Slice(const std::string& start,
                           const std::string& end) const;

  /// Full structural validation: unique names, per-layer hyperparameters,
  /// edge endpoints exist, acyclic.
  Status Validate() const;

  /// Topological order of node names; fails if the graph has a cycle.
  Result<std::vector<std::string>> TopoOrder() const;

  /// True when the DAG is a single chain (every node has <= 1 in and <= 1
  /// out edge, one source, one sink). The runtime engine executes chains.
  bool IsChain() const;

  /// Total learnable parameter count |W| (Table I), given shape inference
  /// from the input shape. Fails if the graph is not an executable DAG.
  Result<int64_t> ParameterCount() const;

  /// Line-based text serialization (stable; used by DLV commits).
  std::string Serialize() const;

  /// Inverse of Serialize.
  static Result<NetworkDef> Parse(const std::string& text);

  bool operator==(const NetworkDef& other) const;

 private:
  int FindIndex(const std::string& name) const;

  std::string name_;
  int64_t in_channels_ = 0;
  int64_t in_height_ = 0;
  int64_t in_width_ = 0;
  std::vector<LayerDef> nodes_;
  std::vector<std::pair<std::string, std::string>> edges_;
};

/// The output shape (C, H, W per sample) of one node after shape inference.
struct NodeShape {
  std::string name;
  int64_t c = 0;
  int64_t h = 0;
  int64_t w = 0;
};

/// Infers per-node output shapes along an executable chain, in topological
/// order. Fails if the definition is invalid, is not a chain, or a conv /
/// pool output shape underflows.
Result<std::vector<NodeShape>> InferChainShapes(const NetworkDef& def);

/// Per-node shapes of an executable DAG: the (first) input shape feeding
/// the node and its output shape.
struct DagNodeShape {
  std::string name;
  NodeShape in;
  NodeShape out;
};

/// Shape inference for general executable DAGs, in topological order.
/// Executable means: exactly one source (which consumes the network
/// input) and one sink; every kEltwiseAdd node has exactly two
/// predecessors with equal output shapes; every other non-source node has
/// exactly one predecessor. Fan-out (one node feeding several successors,
/// as in residual blocks) is unrestricted.
Result<std::vector<DagNodeShape>> InferDagShapes(const NetworkDef& def);

}  // namespace modelhub

#endif  // MODELHUB_NN_NETWORK_DEF_H_
