#include "nn/zoo.h"

#include <string>

#include "common/macros.h"

namespace modelhub {

namespace {

/// Appends conv + relu with VGG-style 3x3 pad-1 kernels.
void AppendConvRelu(NetworkDef* def, const std::string& name,
                    int64_t channels, int64_t kernel, int64_t stride,
                    int64_t pad) {
  MH_CHECK(def->Append(MakeConv(name, channels, kernel, stride, pad)).ok());
  MH_CHECK(def->Append(MakeActivation("relu_" + name, LayerKind::kReLU)).ok());
}

}  // namespace

NetworkDef LeNet(int64_t classes) {
  NetworkDef def("lenet", 1, 28, 28);
  MH_CHECK(def.Append(MakeConv("conv1", 20, 5)).ok());
  MH_CHECK(def.Append(MakePool("pool1", PoolMode::kMax, 2, 2)).ok());
  MH_CHECK(def.Append(MakeConv("conv2", 50, 5)).ok());
  MH_CHECK(def.Append(MakePool("pool2", PoolMode::kMax, 2, 2)).ok());
  MH_CHECK(def.Append(MakeFull("ip1", 500)).ok());
  MH_CHECK(def.Append(MakeActivation("relu1", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeFull("ip2", classes)).ok());
  MH_CHECK(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

NetworkDef MiniLeNet(int64_t classes, int64_t image_size) {
  NetworkDef def("mini-lenet", 1, image_size, image_size);
  MH_CHECK(def.Append(MakeConv("conv1", 8, 5)).ok());
  MH_CHECK(def.Append(MakePool("pool1", PoolMode::kMax, 2, 2)).ok());
  MH_CHECK(def.Append(MakeConv("conv2", 16, 5)).ok());
  MH_CHECK(def.Append(MakePool("pool2", PoolMode::kMax, 2, 2)).ok());
  MH_CHECK(def.Append(MakeFull("ip1", 64)).ok());
  MH_CHECK(def.Append(MakeActivation("relu1", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeFull("ip2", classes)).ok());
  MH_CHECK(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

NetworkDef AlexNetStyle(int64_t classes) {
  NetworkDef def("alexnet", 3, 227, 227);
  AppendConvRelu(&def, "conv1", 96, 11, 4, 0);
  MH_CHECK(def.Append(MakeLRN("norm1")).ok());
  MH_CHECK(def.Append(MakePool("pool1", PoolMode::kMax, 3, 2)).ok());
  AppendConvRelu(&def, "conv2", 256, 5, 1, 2);
  MH_CHECK(def.Append(MakeLRN("norm2")).ok());
  MH_CHECK(def.Append(MakePool("pool2", PoolMode::kMax, 3, 2)).ok());
  AppendConvRelu(&def, "conv3", 384, 3, 1, 1);
  AppendConvRelu(&def, "conv4", 384, 3, 1, 1);
  AppendConvRelu(&def, "conv5", 256, 3, 1, 1);
  MH_CHECK(def.Append(MakePool("pool5", PoolMode::kMax, 3, 2)).ok());
  MH_CHECK(def.Append(MakeFull("fc6", 4096)).ok());
  MH_CHECK(def.Append(MakeActivation("relu6", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeDropout("drop6", 0.5f)).ok());
  MH_CHECK(def.Append(MakeFull("fc7", 4096)).ok());
  MH_CHECK(def.Append(MakeActivation("relu7", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeDropout("drop7", 0.5f)).ok());
  MH_CHECK(def.Append(MakeFull("fc8", classes)).ok());
  MH_CHECK(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

NetworkDef Vgg16(int64_t classes) {
  NetworkDef def("vgg16", 3, 224, 224);
  const int64_t stages[5] = {64, 128, 256, 512, 512};
  const int64_t convs_per_stage[5] = {2, 2, 3, 3, 3};
  for (int stage = 0; stage < 5; ++stage) {
    for (int64_t i = 1; i <= convs_per_stage[stage]; ++i) {
      const std::string name =
          "conv" + std::to_string(stage + 1) + "_" + std::to_string(i);
      AppendConvRelu(&def, name, stages[stage], 3, 1, 1);
    }
    MH_CHECK(def.Append(MakePool("pool" + std::to_string(stage + 1),
                                 PoolMode::kMax, 2, 2))
                 .ok());
  }
  MH_CHECK(def.Append(MakeFull("fc6", 4096)).ok());
  MH_CHECK(def.Append(MakeActivation("relu6", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeDropout("drop6", 0.5f)).ok());
  MH_CHECK(def.Append(MakeFull("fc7", 4096)).ok());
  MH_CHECK(def.Append(MakeActivation("relu7", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeDropout("drop7", 0.5f)).ok());
  MH_CHECK(def.Append(MakeFull("fc8", classes)).ok());
  MH_CHECK(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

namespace {

/// Appends one identity residual block after the current tail `tail`:
///   tail -> conv a -> relu -> conv b -> add <- tail ; add -> relu.
/// Returns the new tail (the trailing relu).
std::string AppendResidualBlock(NetworkDef* def, const std::string& tail,
                                int64_t index, int64_t channels) {
  const std::string suffix = std::to_string(index);
  const std::string conv_a = "res" + suffix + "_conv1";
  const std::string conv_b = "res" + suffix + "_conv2";
  const std::string relu_mid = "res" + suffix + "_relu1";
  const std::string add = "res" + suffix + "_add";
  const std::string relu_out = "res" + suffix + "_relu2";
  MH_CHECK(def->AddNode(MakeConv(conv_a, channels, 3, 1, 1)).ok());
  MH_CHECK(def->AddNode(MakeActivation(relu_mid, LayerKind::kReLU)).ok());
  MH_CHECK(def->AddNode(MakeConv(conv_b, channels, 3, 1, 1)).ok());
  MH_CHECK(def->AddNode(MakeEltwiseAdd(add)).ok());
  MH_CHECK(def->AddNode(MakeActivation(relu_out, LayerKind::kReLU)).ok());
  MH_CHECK(def->AddEdge(tail, conv_a).ok());
  MH_CHECK(def->AddEdge(conv_a, relu_mid).ok());
  MH_CHECK(def->AddEdge(relu_mid, conv_b).ok());
  MH_CHECK(def->AddEdge(conv_b, add).ok());
  MH_CHECK(def->AddEdge(tail, add).ok());  // The identity skip.
  MH_CHECK(def->AddEdge(add, relu_out).ok());
  return relu_out;
}

}  // namespace

NetworkDef ResNetStyle(int64_t classes, int64_t blocks, int64_t channels) {
  NetworkDef def("resnet-" + std::to_string(blocks), 3, 224, 224);
  MH_CHECK(def.Append(MakeConv("conv1", channels, 7, 2, 3)).ok());
  MH_CHECK(def.Append(MakeActivation("relu1", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakePool("pool1", PoolMode::kMax, 3, 2)).ok());
  std::string tail = "pool1";
  for (int64_t b = 0; b < blocks; ++b) {
    tail = AppendResidualBlock(&def, tail, b, channels);
  }
  const std::string pool = "pool_final";
  MH_CHECK(def.AddNode(MakePool(pool, PoolMode::kAvg, 7, 7)).ok());
  MH_CHECK(def.AddEdge(tail, pool).ok());
  MH_CHECK(def.AddNode(MakeFull("fc", classes)).ok());
  MH_CHECK(def.AddEdge(pool, "fc").ok());
  MH_CHECK(def.AddNode(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  MH_CHECK(def.AddEdge("fc", "prob").ok());
  return def;
}

NetworkDef MiniResNet(int64_t classes, int64_t image_size, int64_t blocks,
                      int64_t channels) {
  NetworkDef def("mini-resnet", 1, image_size, image_size);
  MH_CHECK(def.Append(MakeConv("conv1", channels, 3, 1, 1)).ok());
  MH_CHECK(def.Append(MakeActivation("relu1", LayerKind::kReLU)).ok());
  std::string tail = "relu1";
  for (int64_t b = 0; b < blocks; ++b) {
    tail = AppendResidualBlock(&def, tail, b, channels);
  }
  const std::string pool = "pool_final";
  MH_CHECK(def.AddNode(MakePool(pool, PoolMode::kMax, 2, 2)).ok());
  MH_CHECK(def.AddEdge(tail, pool).ok());
  MH_CHECK(def.AddNode(MakeFull("fc", classes)).ok());
  MH_CHECK(def.AddEdge(pool, "fc").ok());
  MH_CHECK(def.AddNode(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  MH_CHECK(def.AddEdge("fc", "prob").ok());
  return def;
}

NetworkDef MiniVgg(int64_t classes, int64_t image_size,
                   int64_t width_multiple) {
  NetworkDef def("mini-vgg-x" + std::to_string(width_multiple), 1,
                 image_size, image_size);
  AppendConvRelu(&def, "conv1_1", 8 * width_multiple, 3, 1, 1);
  MH_CHECK(def.Append(MakePool("pool1", PoolMode::kMax, 2, 2)).ok());
  AppendConvRelu(&def, "conv2_1", 16 * width_multiple, 3, 1, 1);
  MH_CHECK(def.Append(MakePool("pool2", PoolMode::kMax, 2, 2)).ok());
  MH_CHECK(def.Append(MakeFull("fc1", 32 * width_multiple)).ok());
  MH_CHECK(def.Append(MakeActivation("relu_fc1", LayerKind::kReLU)).ok());
  MH_CHECK(def.Append(MakeFull("fc2", classes)).ok());
  MH_CHECK(def.Append(MakeActivation("prob", LayerKind::kSoftmax)).ok());
  return def;
}

}  // namespace modelhub
