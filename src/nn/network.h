#ifndef MODELHUB_NN_NETWORK_H_
#define MODELHUB_NN_NETWORK_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "nn/network_def.h"
#include "tensor/float_matrix.h"
#include "tensor/tensor.h"

namespace modelhub {

/// A learned parameter blob with its catalog name ("conv1.W", "conv1.b").
/// Snapshots are ordered lists of these; PAS archives them per-matrix.
struct NamedParam {
  std::string name;
  FloatMatrix value;
};

/// An executable instantiation of a NetworkDef DAG: weights plus
/// forward / backward compute. Chains and residual graphs (fan-out plus
/// kEltwiseAdd joins) are supported. This is the from-scratch stand-in
/// for the caffe engine the paper wraps — it exists to produce genuine
/// trained checkpoints and to answer dlv eval queries.
class Network {
 public:
  /// Validates the DAG, runs shape inference, allocates zeroed weights.
  static Result<Network> Create(const NetworkDef& def);

  const NetworkDef& def() const { return def_; }

  /// Number of output units of the final layer (class count for
  /// classifiers).
  int64_t num_outputs() const { return num_outputs_; }

  /// Total learnable scalar count.
  int64_t ParameterCount() const;

  /// He-style random initialization of all parametric layers.
  void InitializeWeights(Rng* rng);

  /// Returns copies of all parameters, in chain order, W before b.
  std::vector<NamedParam> GetParameters() const;

  /// Replaces parameters by name. Every supplied name must exist and match
  /// shapes; parameters not mentioned are left unchanged.
  Status SetParameters(const std::vector<NamedParam>& params);

  /// Returns copies of the gradients accumulated by the most recent
  /// ForwardBackward call, named like GetParameters(). Used for gradient
  /// verification and optimizer diagnostics.
  std::vector<NamedParam> GetGradients() const;

  /// Inference-mode forward pass. Output is the final layer activation
  /// (softmax probabilities if the chain ends in softmax), shaped
  /// [N, num_outputs, 1, 1].
  Status Forward(const Tensor& input, Tensor* output) const;

  /// Argmax labels for a batch.
  Result<std::vector<int>> Predict(const Tensor& input) const;

  /// Fraction of samples whose argmax matches `labels`.
  Result<double> Accuracy(const Tensor& input, const std::vector<int>& labels) const;

  /// Training step state: forward (train mode: dropout active), softmax
  /// cross-entropy loss against `labels`, then backprop accumulating
  /// per-layer gradients. Returns the mean batch loss.
  Result<double> ForwardBackward(const Tensor& input,
                                 const std::vector<int>& labels, Rng* rng);

  /// SGD with momentum: v = mu * v - lr * (grad + wd * w); w += v.
  void SgdUpdate(float learning_rate, float momentum, float weight_decay);

 private:
  friend class IntervalEvaluator;

  struct LayerState {
    LayerDef def;
    NodeShape out_shape;       // Per-sample output C,H,W.
    NodeShape in_shape;        // Per-sample input C,H,W.
    // Topological indices of this node's inputs; -1 = the network input.
    // Exactly one entry except for kEltwiseAdd (two).
    std::vector<int> inputs;
    FloatMatrix weight;        // Parametric layers only.
    FloatMatrix bias;          // 1 x num_output.
    FloatMatrix grad_weight;
    FloatMatrix grad_bias;
    FloatMatrix vel_weight;    // Momentum buffers.
    FloatMatrix vel_bias;
  };

  /// Per-layer forward state retained for backprop during a training step.
  struct Scratch {
    Tensor in;
    Tensor out;
    std::vector<int32_t> pool_argmax;
    std::vector<uint8_t> dropout_mask;
    std::vector<float> lrn_scale;
  };

  /// Runs one layer. `scratch` is null for inference; when set, training
  /// behavior applies (dropout active) and backprop state is recorded.
  Status ForwardLayer(const LayerState& layer, const Tensor& in, Tensor* out,
                      Scratch* scratch, Rng* rng) const;
  Status BackwardLayer(LayerState* layer, const Scratch& scratch,
                       const Tensor& dout, Tensor* din);

  NetworkDef def_;
  std::vector<LayerState> layers_;  // In topological order.
  int sink_index_ = -1;             // Index of the unique sink in layers_.
  int64_t num_outputs_ = 0;
  bool ends_in_softmax_ = false;
};

}  // namespace modelhub

#endif  // MODELHUB_NN_NETWORK_H_
