#ifndef MODELHUB_NN_TRAINER_H_
#define MODELHUB_NN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/dataset.h"
#include "nn/network.h"

namespace modelhub {

/// Optimization hyperparameters — the "config" object DQL's evaluate/vary
/// clause sweeps over, and part of the metadata M extracted into the DLV
/// catalog.
struct TrainOptions {
  int64_t iterations = 200;
  int64_t batch_size = 32;
  float base_learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Multiplicative learning rate decay applied every `lr_step` iterations
  /// (1.0 = constant).
  float lr_gamma = 1.0f;
  int64_t lr_step = 100;
  /// A parameter snapshot is recorded every `snapshot_every` iterations
  /// (and always at the end). 0 disables intermediate snapshots.
  int64_t snapshot_every = 0;
  /// Loss/accuracy are logged every `log_every` iterations.
  int64_t log_every = 20;
  uint64_t seed = 1;
};

/// One measurement row of the training log (metadata M in Sec. III-A:
/// loss / accuracy / dynamic learning rate at some iterations).
struct TrainLogEntry {
  int64_t iteration = 0;
  double loss = 0.0;
  double learning_rate = 0.0;
  double train_accuracy = -1.0;  ///< -1 when not measured at this entry.
};

/// A checkpointed snapshot: iteration number plus all learned parameters.
struct TrainSnapshot {
  int64_t iteration = 0;
  std::vector<NamedParam> params;
};

/// Result of a training run: the log and the checkpoint series s1..sn
/// (Fig. 4 of the paper; the last snapshot is the "latest snapshot" s_v).
struct TrainResult {
  std::vector<TrainLogEntry> log;
  std::vector<TrainSnapshot> snapshots;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
};

/// Runs minibatch SGD on `net` over `dataset` per `options`. The network is
/// modified in place; the returned TrainResult carries the checkpointed
/// snapshots that DLV commits and PAS archives.
Result<TrainResult> TrainNetwork(Network* net, const Dataset& dataset,
                                 const TrainOptions& options);

/// Evaluates accuracy over an entire dataset in batches.
Result<double> EvaluateAccuracy(const Network& net, const Dataset& dataset,
                                int64_t batch_size = 64);

}  // namespace modelhub

#endif  // MODELHUB_NN_TRAINER_H_
