#include "nn/gemm.h"

namespace modelhub {

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  // i-k-j order: the inner loop streams rows of B and C.
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a[i * k + p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  // Dot products of contiguous rows.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      c_row[j] += acc;
    }
  }
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  // p-i-j order keeps all three accesses row-contiguous.
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_pi * b_row[j];
      }
    }
  }
}

void Im2Col(const float* in, int64_t c, int64_t h, int64_t w, int64_t kernel,
            int64_t stride, int64_t pad, int64_t oh_len, int64_t ow_len,
            float* cols) {
  const int64_t out_area = oh_len * ow_len;
  for (int64_t channel = 0; channel < c; ++channel) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        float* row =
            cols + ((channel * kernel + kh) * kernel + kw) * out_area;
        for (int64_t oh = 0; oh < oh_len; ++oh) {
          const int64_t y = oh * stride + kh - pad;
          if (y < 0 || y >= h) {
            for (int64_t ow = 0; ow < ow_len; ++ow) {
              row[oh * ow_len + ow] = 0.0f;
            }
            continue;
          }
          const float* in_row = in + (channel * h + y) * w;
          for (int64_t ow = 0; ow < ow_len; ++ow) {
            const int64_t x = ow * stride + kw - pad;
            row[oh * ow_len + ow] =
                (x < 0 || x >= w) ? 0.0f : in_row[x];
          }
        }
      }
    }
  }
}

void Col2ImAccumulate(const float* cols, int64_t c, int64_t h, int64_t w,
                      int64_t kernel, int64_t stride, int64_t pad,
                      int64_t oh_len, int64_t ow_len, float* in) {
  const int64_t out_area = oh_len * ow_len;
  for (int64_t channel = 0; channel < c; ++channel) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        const float* row =
            cols + ((channel * kernel + kh) * kernel + kw) * out_area;
        for (int64_t oh = 0; oh < oh_len; ++oh) {
          const int64_t y = oh * stride + kh - pad;
          if (y < 0 || y >= h) continue;
          float* in_row = in + (channel * h + y) * w;
          for (int64_t ow = 0; ow < ow_len; ++ow) {
            const int64_t x = ow * stride + kw - pad;
            if (x >= 0 && x < w) {
              in_row[x] += row[oh * ow_len + ow];
            }
          }
        }
      }
    }
  }
}

}  // namespace modelhub
