#include "nn/network_def.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "common/macros.h"

namespace modelhub {

namespace {

/// Non-throwing integer / float parsing for untrusted serialized input.
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseFloat(const std::string& text, float* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const float v = std::strtof(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

NetworkDef::NetworkDef(std::string name, int64_t in_channels,
                       int64_t in_height, int64_t in_width)
    : name_(std::move(name)),
      in_channels_(in_channels),
      in_height_(in_height),
      in_width_(in_width) {}

int NetworkDef::FindIndex(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status NetworkDef::AddNode(LayerDef layer) {
  MH_RETURN_IF_ERROR(layer.Validate());
  if (FindIndex(layer.name) >= 0) {
    return Status::AlreadyExists("duplicate node name: " + layer.name);
  }
  nodes_.push_back(std::move(layer));
  return Status::OK();
}

Status NetworkDef::Append(LayerDef layer) {
  const std::string tail =
      nodes_.empty() ? std::string() : nodes_.back().name;
  MH_RETURN_IF_ERROR(AddNode(std::move(layer)));
  if (!tail.empty()) {
    return AddEdge(tail, nodes_.back().name);
  }
  return Status::OK();
}

Status NetworkDef::AddEdge(const std::string& from, const std::string& to) {
  if (FindIndex(from) < 0) return Status::NotFound("no node: " + from);
  if (FindIndex(to) < 0) return Status::NotFound("no node: " + to);
  for (const auto& e : edges_) {
    if (e.first == from && e.second == to) {
      return Status::AlreadyExists("duplicate edge " + from + "->" + to);
    }
  }
  edges_.emplace_back(from, to);
  return Status::OK();
}

Result<LayerDef> NetworkDef::GetNode(const std::string& name) const {
  const int i = FindIndex(name);
  if (i < 0) return Status::NotFound("no node: " + name);
  return nodes_[i];
}

bool NetworkDef::HasNode(const std::string& name) const {
  return FindIndex(name) >= 0;
}

std::vector<std::string> NetworkDef::Next(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& e : edges_) {
    if (e.first == name) out.push_back(e.second);
  }
  return out;
}

std::vector<std::string> NetworkDef::Prev(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& e : edges_) {
    if (e.second == name) out.push_back(e.first);
  }
  return out;
}

Result<std::vector<std::string>> NetworkDef::Select(
    const std::string& pattern) const {
  std::regex re;
  try {
    re = std::regex(pattern, std::regex::extended);
  } catch (const std::regex_error&) {
    return Status::InvalidArgument("bad selector regex: " + pattern);
  }
  std::vector<std::string> out;
  for (const auto& node : nodes_) {
    if (std::regex_match(node.name, re)) out.push_back(node.name);
  }
  return out;
}

Status NetworkDef::InsertAfter(const std::string& after, LayerDef layer) {
  if (FindIndex(after) < 0) return Status::NotFound("no node: " + after);
  MH_RETURN_IF_ERROR(AddNode(layer));
  const std::string inserted = layer.name;
  // Collect the successors first: AddEdge below mutates edges_.
  std::vector<std::string> successors;
  for (const auto& e : edges_) {
    if (e.first == after) successors.push_back(e.second);
  }
  if (successors.empty()) {
    // `after` is the tail: the new node becomes the tail.
    return AddEdge(after, inserted);
  }
  // Split every after -> X into after -> inserted -> X.
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const auto& e) { return e.first == after; }),
               edges_.end());
  MH_RETURN_IF_ERROR(AddEdge(after, inserted));
  std::sort(successors.begin(), successors.end());
  successors.erase(std::unique(successors.begin(), successors.end()),
                   successors.end());
  for (const auto& successor : successors) {
    MH_RETURN_IF_ERROR(AddEdge(inserted, successor));
  }
  return Status::OK();
}

Status NetworkDef::DeleteNode(const std::string& name) {
  const int idx = FindIndex(name);
  if (idx < 0) return Status::NotFound("no node: " + name);
  const std::vector<std::string> preds = Prev(name);
  const std::vector<std::string> succs = Next(name);
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const auto& e) {
                                return e.first == name || e.second == name;
                              }),
               edges_.end());
  nodes_.erase(nodes_.begin() + idx);
  for (const auto& p : preds) {
    for (const auto& s : succs) {
      bool exists = false;
      for (const auto& e : edges_) {
        if (e.first == p && e.second == s) exists = true;
      }
      if (!exists) edges_.emplace_back(p, s);
    }
  }
  return Status::OK();
}

Result<NetworkDef> NetworkDef::Slice(const std::string& start,
                                     const std::string& end) const {
  if (FindIndex(start) < 0) return Status::NotFound("no node: " + start);
  if (FindIndex(end) < 0) return Status::NotFound("no node: " + end);
  // Forward reachability from start.
  std::set<std::string> fwd;
  std::vector<std::string> stack = {start};
  while (!stack.empty()) {
    const std::string n = stack.back();
    stack.pop_back();
    if (!fwd.insert(n).second) continue;
    for (const auto& s : Next(n)) stack.push_back(s);
  }
  // Backward reachability from end.
  std::set<std::string> bwd;
  stack = {end};
  while (!stack.empty()) {
    const std::string n = stack.back();
    stack.pop_back();
    if (!bwd.insert(n).second) continue;
    for (const auto& p : Prev(n)) stack.push_back(p);
  }
  std::set<std::string> keep;
  std::set_intersection(fwd.begin(), fwd.end(), bwd.begin(), bwd.end(),
                        std::inserter(keep, keep.begin()));
  if (keep.empty() || keep.count(start) == 0 || keep.count(end) == 0) {
    return Status::InvalidArgument("slice: no path from " + start + " to " +
                                   end);
  }
  NetworkDef out(name_ + ":" + start + ".." + end, in_channels_, in_height_,
                 in_width_);
  for (const auto& node : nodes_) {
    if (keep.count(node.name)) {
      MH_RETURN_IF_ERROR(out.AddNode(node));
    }
  }
  for (const auto& e : edges_) {
    if (keep.count(e.first) && keep.count(e.second)) {
      MH_RETURN_IF_ERROR(out.AddEdge(e.first, e.second));
    }
  }
  return out;
}

Status NetworkDef::Validate() const {
  if (in_channels_ <= 0 || in_height_ <= 0 || in_width_ <= 0) {
    return Status::InvalidArgument("network " + name_ + ": bad input shape");
  }
  std::set<std::string> names;
  for (const auto& node : nodes_) {
    MH_RETURN_IF_ERROR(node.Validate());
    if (!names.insert(node.name).second) {
      return Status::InvalidArgument("duplicate node name: " + node.name);
    }
  }
  for (const auto& e : edges_) {
    if (names.count(e.first) == 0 || names.count(e.second) == 0) {
      return Status::InvalidArgument("edge references missing node: " +
                                     e.first + "->" + e.second);
    }
  }
  return TopoOrder().status();
}

Result<std::vector<std::string>> NetworkDef::TopoOrder() const {
  std::map<std::string, int> in_degree;
  for (const auto& node : nodes_) in_degree[node.name] = 0;
  for (const auto& e : edges_) in_degree[e.second]++;
  // Kahn's algorithm, preferring insertion order for determinism.
  std::vector<std::string> order;
  std::vector<bool> done(nodes_.size(), false);
  while (order.size() < nodes_.size()) {
    bool progressed = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (done[i] || in_degree[nodes_[i].name] != 0) continue;
      done[i] = true;
      order.push_back(nodes_[i].name);
      for (const auto& s : Next(nodes_[i].name)) in_degree[s]--;
      progressed = true;
    }
    if (!progressed) {
      return Status::InvalidArgument("network " + name_ + " has a cycle");
    }
  }
  return order;
}

bool NetworkDef::IsChain() const {
  if (nodes_.empty()) return false;
  int sources = 0;
  int sinks = 0;
  for (const auto& node : nodes_) {
    const size_t out_deg = Next(node.name).size();
    const size_t in_deg = Prev(node.name).size();
    if (out_deg > 1 || in_deg > 1) return false;
    if (in_deg == 0) ++sources;
    if (out_deg == 0) ++sinks;
  }
  return sources == 1 && sinks == 1 && TopoOrder().ok();
}

Result<int64_t> NetworkDef::ParameterCount() const {
  MH_ASSIGN_OR_RETURN(std::vector<DagNodeShape> shapes, InferDagShapes(*this));
  int64_t total = 0;
  for (const auto& ns : shapes) {
    MH_ASSIGN_OR_RETURN(LayerDef node, GetNode(ns.name));
    if (node.kind == LayerKind::kConv) {
      total += node.num_output * ns.in.c * node.kernel * node.kernel +
               node.num_output;
    } else if (node.kind == LayerKind::kFull) {
      total +=
          node.num_output * (ns.in.c * ns.in.h * ns.in.w) + node.num_output;
    }
  }
  return total;
}

std::string NetworkDef::Serialize() const {
  std::ostringstream out;
  out << "network " << name_ << "\n";
  out << "input " << in_channels_ << " " << in_height_ << " " << in_width_
      << "\n";
  for (const auto& node : nodes_) {
    out << "node " << node.name << " " << LayerKindToString(node.kind);
    const std::string attrs = node.AttributesString();
    if (!attrs.empty()) out << " " << attrs;
    out << "\n";
  }
  for (const auto& e : edges_) {
    out << "edge " << e.first << " " << e.second << "\n";
  }
  return out.str();
}

Result<NetworkDef> NetworkDef::Parse(const std::string& text) {
  NetworkDef def;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "network") {
      ls >> def.name_;
    } else if (tag == "input") {
      ls >> def.in_channels_ >> def.in_height_ >> def.in_width_;
      if (ls.fail()) {
        return Status::Corruption("network parse: bad input line");
      }
    } else if (tag == "node") {
      LayerDef node;
      std::string kind;
      ls >> node.name >> kind;
      MH_ASSIGN_OR_RETURN(node.kind, LayerKindFromString(kind));
      std::string attr;
      while (ls >> attr) {
        const size_t eq = attr.find('=');
        if (eq == std::string::npos) {
          return Status::Corruption("network parse: bad attribute " + attr);
        }
        const std::string key = attr.substr(0, eq);
        const std::string value = attr.substr(eq + 1);
        bool ok = true;
        if (key == "n") {
          ok = ParseInt64(value, &node.num_output);
        } else if (key == "k") {
          ok = ParseInt64(value, &node.kernel);
        } else if (key == "s") {
          ok = ParseInt64(value, &node.stride);
        } else if (key == "p") {
          ok = ParseInt64(value, &node.pad);
        } else if (key == "mode") {
          node.pool_mode = value == "avg" ? PoolMode::kAvg : PoolMode::kMax;
        } else if (key == "ratio") {
          ok = ParseFloat(value, &node.dropout_ratio);
        } else if (key == "size") {
          ok = ParseInt64(value, &node.lrn_local_size);
        } else if (key == "alpha") {
          ok = ParseFloat(value, &node.lrn_alpha);
        } else if (key == "beta") {
          ok = ParseFloat(value, &node.lrn_beta);
        } else if (key == "k0") {
          ok = ParseFloat(value, &node.lrn_k);
        } else {
          return Status::Corruption("network parse: unknown attribute " +
                                    key);
        }
        if (!ok) {
          return Status::Corruption("network parse: bad value for " + key +
                                    ": " + value);
        }
      }
      MH_RETURN_IF_ERROR(def.AddNode(std::move(node)));
    } else if (tag == "edge") {
      std::string from;
      std::string to;
      ls >> from >> to;
      MH_RETURN_IF_ERROR(def.AddEdge(from, to));
    } else {
      return Status::Corruption("network parse: unknown tag " + tag);
    }
  }
  return def;
}

bool NetworkDef::operator==(const NetworkDef& other) const {
  return name_ == other.name_ && in_channels_ == other.in_channels_ &&
         in_height_ == other.in_height_ && in_width_ == other.in_width_ &&
         nodes_ == other.nodes_ && edges_ == other.edges_;
}

Result<std::vector<NodeShape>> InferChainShapes(const NetworkDef& def) {
  if (!def.IsChain()) {
    return Status::InvalidArgument("network " + def.name() +
                                   " is not an executable chain");
  }
  MH_ASSIGN_OR_RETURN(std::vector<DagNodeShape> shapes, InferDagShapes(def));
  std::vector<NodeShape> out;
  for (const auto& ns : shapes) {
    out.push_back(NodeShape{ns.name, ns.out.c, ns.out.h, ns.out.w});
  }
  return out;
}

namespace {

/// Output shape of one layer given its (first) input shape.
Result<NodeShape> LayerOutputShape(const LayerDef& node, const NodeShape& in) {
  NodeShape out{node.name, in.c, in.h, in.w};
  switch (node.kind) {
    case LayerKind::kConv: {
      const int64_t oh =
          (in.h + 2 * node.pad - node.kernel) / node.stride + 1;
      const int64_t ow =
          (in.w + 2 * node.pad - node.kernel) / node.stride + 1;
      if (oh <= 0 || ow <= 0) {
        return Status::InvalidArgument("conv " + node.name +
                                       ": output shape underflow");
      }
      out.c = node.num_output;
      out.h = oh;
      out.w = ow;
      break;
    }
    case LayerKind::kPool: {
      const int64_t oh = (in.h - node.kernel) / node.stride + 1;
      const int64_t ow = (in.w - node.kernel) / node.stride + 1;
      if (oh <= 0 || ow <= 0) {
        return Status::InvalidArgument("pool " + node.name +
                                       ": output shape underflow");
      }
      out.h = oh;
      out.w = ow;
      break;
    }
    case LayerKind::kFull:
      out.c = node.num_output;
      out.h = 1;
      out.w = 1;
      break;
    case LayerKind::kFlatten:
      out.c = in.c * in.h * in.w;
      out.h = 1;
      out.w = 1;
      break;
    default:
      break;  // Shape-preserving layers (incl. kEltwiseAdd).
  }
  return out;
}

}  // namespace

Result<std::vector<DagNodeShape>> InferDagShapes(const NetworkDef& def) {
  MH_RETURN_IF_ERROR(def.Validate());
  MH_ASSIGN_OR_RETURN(std::vector<std::string> order, def.TopoOrder());
  if (order.empty()) {
    return Status::InvalidArgument("network " + def.name() + " is empty");
  }
  // Structural checks: one source, one sink, in-degrees by kind.
  int sources = 0;
  int sinks = 0;
  for (const auto& name : order) {
    if (def.Prev(name).empty()) ++sources;
    if (def.Next(name).empty()) ++sinks;
  }
  if (sources != 1 || sinks != 1) {
    return Status::InvalidArgument(
        "network " + def.name() + " must have exactly one source and sink");
  }

  const NodeShape input_shape{"", def.in_channels(), def.in_height(),
                              def.in_width()};
  std::map<std::string, NodeShape> out_shapes;
  std::vector<DagNodeShape> result;
  for (const auto& name : order) {
    MH_ASSIGN_OR_RETURN(LayerDef node, def.GetNode(name));
    const std::vector<std::string> preds = def.Prev(name);
    NodeShape in;
    if (node.kind == LayerKind::kEltwiseAdd) {
      if (preds.size() != 2) {
        return Status::InvalidArgument("add node " + name +
                                       " needs exactly two inputs");
      }
      const NodeShape& a = out_shapes[preds[0]];
      const NodeShape& b = out_shapes[preds[1]];
      if (a.c != b.c || a.h != b.h || a.w != b.w) {
        return Status::InvalidArgument("add node " + name +
                                       ": input shape mismatch");
      }
      in = a;
    } else if (preds.empty()) {
      in = input_shape;  // The single source.
    } else if (preds.size() == 1) {
      in = out_shapes[preds[0]];
    } else {
      return Status::InvalidArgument("node " + name +
                                     " has multiple inputs but is not add");
    }
    MH_ASSIGN_OR_RETURN(NodeShape out, LayerOutputShape(node, in));
    out_shapes[name] = out;
    result.push_back(DagNodeShape{name, in, out});
  }
  return result;
}

}  // namespace modelhub
