#ifndef MODELHUB_NN_GEMM_H_
#define MODELHUB_NN_GEMM_H_

#include <cstdint>

namespace modelhub {

/// Minimal dense kernels backing the convolution layers (the standard
/// im2col + GEMM lowering caffe uses). All matrices are row-major.

/// C[m x n] += A[m x k] * B[k x n].
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

/// C[m x n] += A[m x k] * B[n x k]^T.
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

/// C[m x n] += A[k x m]^T * B[k x n].
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n);

/// Unrolls one [C, H, W] sample into columns [C*kernel*kernel, OH*OW]:
/// cols(c*k*k + kh*k + kw, oh*ow_len + ow) = in(c, oh*stride+kh-pad,
/// ow*stride+kw-pad), zero outside the input. `cols` must hold
/// c*kernel*kernel*oh_len*ow_len floats.
void Im2Col(const float* in, int64_t c, int64_t h, int64_t w, int64_t kernel,
            int64_t stride, int64_t pad, int64_t oh_len, int64_t ow_len,
            float* cols);

/// Adjoint of Im2Col: scatters columns back, *accumulating* into `in`
/// (which the caller zeroes first). Positions that Im2Col read multiple
/// times receive the sum of their column entries.
void Col2ImAccumulate(const float* cols, int64_t c, int64_t h, int64_t w,
                      int64_t kernel, int64_t stride, int64_t pad,
                      int64_t oh_len, int64_t ow_len, float* in);

}  // namespace modelhub

#endif  // MODELHUB_NN_GEMM_H_
