#ifndef MODELHUB_NN_INTERVAL_EVAL_H_
#define MODELHUB_NN_INTERVAL_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/network.h"
#include "tensor/interval.h"

namespace modelhub {

/// Evaluates a network forward with *uncertain* weights, propagating sound
/// elementwise bounds through every layer — the perturbation-error
/// determination procedure of Sec. IV-D (Problem 2). PAS's progressive
/// query evaluation retrieves high-order weight bytes only, derives a
/// per-weight interval [w_min, w_max], runs this evaluator, and applies
/// Lemma 4 to decide whether low-order bytes are needed.
class IntervalEvaluator {
 public:
  /// `net` supplies the architecture and any parameters not overridden;
  /// it must outlive the evaluator.
  explicit IntervalEvaluator(const Network* net) : net_(net) {}

  /// Forward pass with interval weight overrides, keyed by parameter name
  /// ("conv1.W"). Parameters absent from `bounds` use the network's exact
  /// values. Returns per-sample output intervals of the last
  /// order-preserving layer: a trailing softmax is skipped, since argmax
  /// over logits equals argmax over probabilities (Lemma 4 applies
  /// unchanged).
  Result<std::vector<std::vector<Interval>>> Forward(
      const Tensor& input,
      const std::map<std::string, IntervalMatrix>& bounds) const;

  /// Lemma 4 determinism condition: returns k if some class's lower bound
  /// exceeds every other class's upper bound, else -1 (undetermined).
  static int DeterminedTopLabel(const std::vector<Interval>& outputs);

  /// Top-k generalization used by Fig 6(d): true when the k classes with
  /// the largest lower bounds all dominate the best upper bound outside
  /// that set (the paper's "matched index value range overlaps with k+1
  /// index value range" test).
  static bool TopKDetermined(const std::vector<Interval>& outputs, int k);

 private:
  const Network* net_;
};

}  // namespace modelhub

#endif  // MODELHUB_NN_INTERVAL_EVAL_H_
