#ifndef MODELHUB_NET_CLIENT_H_
#define MODELHUB_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"
#include "nn/network.h"

namespace modelhub {

struct ClientOptions {
  int connect_timeout_ms = 2000;
  /// Per-RPC budget: request write + server think time + response read.
  int op_timeout_ms = 15000;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Extra connect attempts after a kUnavailable first try (0 = fail
  /// fast). Lets scripts and the router ride out a backend restart
  /// window without hand-rolled sleep loops.
  int connect_retries = 0;
  /// Base delay between connect attempts; doubled per retry with ±50%
  /// jitter, capped at 2s.
  int connect_backoff_ms = 50;
};

/// One wire round trip with the server-side status left untouched — the
/// forwarding primitive for modelhub-router, which must relay the
/// backend's exact status code and message to its own client.
struct WireResponse {
  Status remote;       ///< Status the server put in the response payload.
  std::string result;  ///< Result bytes (empty when remote is non-OK).
};

/// Parsed PING reply. Servers since the fleet PR answer
/// "pong state=<serving|draining> queue=<n> active=<n>" (possibly with
/// further space-separated key=value tokens); a bare "pong" from an older
/// server parses as serving with zero depth.
struct PingInfo {
  std::string state = "serving";
  int64_t queue_depth = 0;
  int64_t active = 0;
  bool draining() const { return state == "draining"; }
};

/// Parses a PING reply. Non-OK only when the reply does not start with
/// the "pong" liveness token.
Result<PingInfo> ParsePingReply(std::string_view reply);

/// A blocking wire-level client for modelhubd (one connection, requests
/// issued serially — the protocol has no interleaving). Transport faults
/// come back as kUnavailable (cannot reach / peer gone) or
/// kDeadlineExceeded; errors the server itself returned keep their
/// server-side code with the message prefixed "server: ", so `dlv rpc`
/// can exit differently for "no server" vs. "server said no".
class ModelHubClient {
 public:
  static Result<ModelHubClient> Connect(const std::string& host, int port,
                                        ClientOptions options = {});

  /// One raw round trip: sends `payload` under `opcode`, returns the
  /// response result bytes (after stripping the status header).
  Result<std::string> Call(uint8_t opcode, std::string_view payload);

  /// Like Call, but a served error comes back OK with the server's
  /// untouched Status in WireResponse::remote (no "server: " prefix).
  /// A non-OK return is strictly a transport/protocol fault of this hop.
  Result<WireResponse> CallDetailed(uint8_t opcode, std::string_view payload);

  /// PING — returns the server's liveness token ("pong").
  Result<std::string> Ping();

  /// LIST_MODELS — one "name parent snapshots best_accuracy state" row
  /// per model version, newline-separated.
  Result<std::string> ListModels();

  /// GET_SNAPSHOT (full precision). `sequence` -1 = latest snapshot.
  Result<std::vector<NamedParam>> GetSnapshot(const std::string& model,
                                              int64_t sequence = -1);

  /// GET_SNAPSHOT (progressive/bounded): retrieves only the first
  /// `planes` byte planes (1..3) and returns the server's per-parameter
  /// interval-width summary.
  Result<std::string> GetSnapshotBounds(const std::string& model,
                                        int64_t sequence, int planes);

  /// DQL_QUERY — runs one DQL statement server-side, returns rendered
  /// text results.
  Result<std::string> Query(const std::string& dql);

  /// STATS — the server's metrics registry snapshot as JSON.
  Result<std::string> Stats();

  /// GET_METRICS — the server's metrics in Prometheus text exposition
  /// format (the router returns the whole fleet, node-labeled).
  Result<std::string> Metrics();

  /// GET_TRACE — concatenated binary trace-dump sections (one per node;
  /// parse with ParseTraceDumps, render with MergeTraceDumps).
  Result<std::string> GetTraceDump();

  /// SHUTDOWN — asks the server to drain gracefully.
  Status Shutdown();

 private:
  ModelHubClient(Socket sock, ClientOptions options)
      : sock_(std::move(sock)), options_(options) {}

  Socket sock_;
  ClientOptions options_;
};

}  // namespace modelhub

#endif  // MODELHUB_NET_CLIENT_H_
