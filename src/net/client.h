#ifndef MODELHUB_NET_CLIENT_H_
#define MODELHUB_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"
#include "nn/network.h"

namespace modelhub {

struct ClientOptions {
  int connect_timeout_ms = 2000;
  /// Per-RPC budget: request write + server think time + response read.
  int op_timeout_ms = 15000;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// A blocking wire-level client for modelhubd (one connection, requests
/// issued serially — the protocol has no interleaving). Transport faults
/// come back as kUnavailable (cannot reach / peer gone) or
/// kDeadlineExceeded; errors the server itself returned keep their
/// server-side code with the message prefixed "server: ", so `dlv rpc`
/// can exit differently for "no server" vs. "server said no".
class ModelHubClient {
 public:
  static Result<ModelHubClient> Connect(const std::string& host, int port,
                                        ClientOptions options = {});

  /// One raw round trip: sends `payload` under `opcode`, returns the
  /// response result bytes (after stripping the status header).
  Result<std::string> Call(uint8_t opcode, std::string_view payload);

  /// PING — returns the server's liveness token ("pong").
  Result<std::string> Ping();

  /// LIST_MODELS — one "name parent snapshots best_accuracy state" row
  /// per model version, newline-separated.
  Result<std::string> ListModels();

  /// GET_SNAPSHOT (full precision). `sequence` -1 = latest snapshot.
  Result<std::vector<NamedParam>> GetSnapshot(const std::string& model,
                                              int64_t sequence = -1);

  /// GET_SNAPSHOT (progressive/bounded): retrieves only the first
  /// `planes` byte planes (1..3) and returns the server's per-parameter
  /// interval-width summary.
  Result<std::string> GetSnapshotBounds(const std::string& model,
                                        int64_t sequence, int planes);

  /// DQL_QUERY — runs one DQL statement server-side, returns rendered
  /// text results.
  Result<std::string> Query(const std::string& dql);

  /// STATS — the server's metrics registry snapshot as JSON.
  Result<std::string> Stats();

  /// SHUTDOWN — asks the server to drain gracefully.
  Status Shutdown();

 private:
  ModelHubClient(Socket sock, ClientOptions options)
      : sock_(std::move(sock)), options_(options) {}

  Socket sock_;
  ClientOptions options_;
};

}  // namespace modelhub

#endif  // MODELHUB_NET_CLIENT_H_
