#ifndef MODELHUB_NET_FRAME_H_
#define MODELHUB_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/socket.h"

namespace modelhub {

/// The modelhubd wire protocol (DESIGN.md §9). One message is one frame:
///
///   [u32 LE body length N] [body: u8 version, u8 opcode, payload (N-2)]
///   [u32 LE CRC-32 of body]
///
/// The length prefix is validated against a cap BEFORE the body buffer is
/// allocated, so a torn or hostile header cannot trigger a giant
/// allocation. The CRC detects torn frames (a stream cut mid-frame is
/// also caught earlier as a short read). Requests and responses share the
/// layout; a response carries the request's opcode and a status-prefixed
/// payload (EncodeResponsePayload).
constexpr uint8_t kWireVersion = 1;

/// Distributed-tracing extension (DESIGN.md §13): a frame whose version
/// byte has this flag set carries a trace-context header at the front of
/// the body, after the opcode:
///
///   [fixed64 trace_hi] [fixed64 trace_lo] [fixed64 span_id] [u8 flags]
///   [varint deadline_ms]
///
/// flags bit0 = sampled, bit1 = the client's deadline had already expired
/// when the frame was sent. The flag bit keeps the extension backward
/// compatible both ways: peers that never send it emit plain version-1
/// frames (parsed everywhere), and old peers that receive a traced frame
/// reject it with a clean "unsupported wire version" error instead of
/// misparsing the payload.
constexpr uint8_t kWireTraceFlag = 0x80;

/// Frame body length = version + opcode + payload.
constexpr uint64_t kFrameHeaderBytes = 2;
constexpr uint64_t kDefaultMaxFrameBytes = 64ull << 20;

enum class Opcode : uint8_t {
  kPing = 1,
  kListModels = 2,
  kGetSnapshot = 3,
  kDqlQuery = 4,
  kStats = 5,
  kShutdown = 6,
  kGetTrace = 7,
  kGetMetrics = 8,
};

std::string_view OpcodeToString(uint8_t opcode);

/// Decoded trace-context header (see kWireTraceFlag).
struct FrameTrace {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  /// The sender's innermost span id — the receiver's parent.
  uint64_t span_id = 0;
  bool sampled = false;
  /// True when the sender's deadline had already passed at send time.
  bool deadline_expired = false;
  /// Remaining client budget in milliseconds (0 = no deadline).
  uint32_t deadline_ms = 0;
};

struct Frame {
  uint8_t version = kWireVersion;  ///< Trace flag already stripped.
  uint8_t opcode = 0;
  /// Present when the sender attached a trace-context header.
  std::optional<FrameTrace> trace;
  std::string payload;
};

/// Serializes one frame (length prefix + body + CRC). A non-null `trace`
/// sets kWireTraceFlag and prepends the trace-context header.
std::string EncodeFrame(uint8_t opcode, std::string_view payload,
                        const FrameTrace* trace = nullptr);

/// Decodes one frame from the front of `input`, consuming it on success.
/// Typed failures: kOutOfRange = `input` holds a truncated frame (read
/// more bytes), kInvalidArgument = declared length exceeds
/// `max_frame_bytes` or is impossibly small, kCorruption = CRC mismatch.
Status DecodeFrame(Slice* input, Frame* frame,
                   uint64_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes one frame to `sock` within `deadline`.
Status WriteFrame(Socket* sock, uint8_t opcode, std::string_view payload,
                  const Deadline& deadline,
                  const std::atomic<bool>* cancel = nullptr,
                  const FrameTrace* trace = nullptr);

/// Reads one frame from `sock`. The length prefix is checked against
/// `max_frame_bytes` before the body is read or allocated. A clean peer
/// close at a frame boundary sets `*clean_eof` (when provided) — a close
/// mid-frame leaves it false and returns kIOError.
Status ReadFrame(Socket* sock, Frame* frame, uint64_t max_frame_bytes,
                 const Deadline& deadline,
                 const std::atomic<bool>* cancel = nullptr,
                 bool* clean_eof = nullptr);

/// Builds a thread trace context from an inbound frame's trace header
/// (inactive when the frame carried none): root spans parent to the
/// caller's span, the sampling decision is adopted verbatim, and the
/// relayed deadline budget starts counting against this process's steady
/// clock. Shared by modelhubd and modelhub-router dispatch loops.
TraceContext ContextFromFrame(const Frame& frame);

/// Response payload layout: [u8 status code][varint length + message]
/// [result bytes]. An OK status carries an empty message.
std::string EncodeResponsePayload(const Status& status,
                                  std::string_view result);

/// Splits a response payload: `*remote` receives the server-side Status,
/// `*payload` is left positioned at the result bytes. Returns non-OK only
/// when the payload itself is malformed (kCorruption).
Status DecodeResponsePayload(Slice* payload, Status* remote);

/// GET_SNAPSHOT request payload: length-prefixed model name, varint
/// (sequence + 1) where 0 means "latest", varint byte planes where 0
/// means exact retrieval and 1..3 request progressive interval bounds.
std::string EncodeGetSnapshotRequest(const std::string& model,
                                     int64_t sequence, int planes);
Status DecodeGetSnapshotRequest(Slice payload, std::string* model,
                                int64_t* sequence, int* planes);

}  // namespace modelhub

#endif  // MODELHUB_NET_FRAME_H_
