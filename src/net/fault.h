#ifndef MODELHUB_NET_FAULT_H_
#define MODELHUB_NET_FAULT_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <string>

#include "common/status.h"

namespace modelhub {

/// Process-wide network fault injector (the src/net sibling of
/// FaultInjectionEnv). Socket I/O consults it at three hook points —
/// connect, read, write — so tests can deterministically reproduce the
/// failure taxonomy the router's resilience stack must absorb:
///
///   * refused connects (a dead or partitioned backend),
///   * connections torn mid-frame (a process killed mid-response),
///   * I/O delayed past its deadline (an overloaded or wedged peer).
///
/// Cost model: one relaxed atomic load per hook when disarmed (the
/// production path); arming any fault flips the flag and takes the mutex
/// on every hook until Reset(). Faults are one-shot counters or sticky
/// sets, all safe to arm/clear from any thread.
class NetFaultInjector {
 public:
  static NetFaultInjector* Global();

  /// Disarms every fault.
  void Reset();

  /// Refuses (kUnavailable) the next `n` Socket::Connect calls, any port.
  void FailNextConnects(int n);

  /// Sticky refusal of connects to one port — the "backend is down"
  /// switch for router tests. AllowConnectsToPort re-opens it.
  void RefuseConnectsToPort(int port);
  void AllowConnectsToPort(int port);

  /// The next WriteFull sends only the first `after_bytes` bytes, then
  /// hard-closes the socket and returns kIOError — the peer observes a
  /// stream cut mid-frame (short body + reset), never a clean EOF.
  void TearNextWriteAfter(size_t after_bytes);

  /// Stalls the next ReadFull / WriteFull by `ms` before any I/O, so an
  /// op-scoped deadline shorter than `ms` must fire.
  void DelayNextReadMs(int ms);
  void DelayNextWriteMs(int ms);

  // --- Hooks (called by Socket; not for test code) ----------------------

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Non-OK when this connect is refused by an armed fault.
  Status OnConnect(const std::string& host, int port);
  /// True when a tear is armed; pops it and returns the byte budget.
  bool ConsumeWriteTear(size_t* after_bytes);
  /// Armed delay in ms (popped), or 0.
  int ConsumeReadDelayMs();
  int ConsumeWriteDelayMs();

 private:
  NetFaultInjector() = default;
  void RecomputeEnabled();  ///< Caller holds mu_.

  std::atomic<bool> enabled_{false};
  std::mutex mu_;
  int fail_connects_ = 0;
  std::set<int> refused_ports_;
  bool tear_armed_ = false;
  size_t tear_after_bytes_ = 0;
  int read_delay_ms_ = 0;
  int write_delay_ms_ = 0;
};

}  // namespace modelhub

#endif  // MODELHUB_NET_FAULT_H_
