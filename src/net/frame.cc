#include "net/frame.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/macros.h"

namespace modelhub {

std::string_view OpcodeToString(uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kListModels:
      return "list_models";
    case Opcode::kGetSnapshot:
      return "get_snapshot";
    case Opcode::kDqlQuery:
      return "dql_query";
    case Opcode::kStats:
      return "stats";
    case Opcode::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string EncodeFrame(uint8_t opcode, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + kFrameHeaderBytes + 8);
  PutFixed32(&out,
             static_cast<uint32_t>(payload.size() + kFrameHeaderBytes));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(opcode));
  out.append(payload);
  const uint32_t crc = Crc32(Slice(out.data() + 4, out.size() - 4));
  PutFixed32(&out, crc);
  return out;
}

namespace {

/// Validates a decoded length prefix without touching the body.
Status CheckBodyLength(uint64_t length, uint64_t max_frame_bytes) {
  if (length < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame body impossibly short: " +
                                   std::to_string(length) + " bytes");
  }
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds cap of " +
        std::to_string(max_frame_bytes));
  }
  return Status::OK();
}

Status CheckBodyCrc(Slice body, uint32_t declared) {
  if (Crc32(body) != declared) {
    return Status::Corruption("frame CRC mismatch (torn or corrupt frame)");
  }
  return Status::OK();
}

}  // namespace

Status DecodeFrame(Slice* input, Frame* frame, uint64_t max_frame_bytes) {
  if (input->size() < 4) {
    return Status::OutOfRange("truncated frame: missing length prefix");
  }
  Slice probe = *input;
  uint32_t length = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&probe, &length));
  MH_RETURN_IF_ERROR(CheckBodyLength(length, max_frame_bytes));
  if (probe.size() < static_cast<uint64_t>(length) + 4) {
    return Status::OutOfRange("truncated frame: body incomplete");
  }
  const Slice body = probe.SubSlice(0, length);
  probe.RemovePrefix(length);
  uint32_t declared = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&probe, &declared));
  MH_RETURN_IF_ERROR(CheckBodyCrc(body, declared));
  frame->version = body[0];
  frame->opcode = body[1];
  frame->payload = body.SubSlice(2, length - 2).ToString();
  *input = probe;
  return Status::OK();
}

Status WriteFrame(Socket* sock, uint8_t opcode, std::string_view payload,
                  const Deadline& deadline, const std::atomic<bool>* cancel) {
  const std::string wire = EncodeFrame(opcode, payload);
  return sock->WriteFull(wire.data(), wire.size(), deadline, cancel);
}

Status ReadFrame(Socket* sock, Frame* frame, uint64_t max_frame_bytes,
                 const Deadline& deadline, const std::atomic<bool>* cancel,
                 bool* clean_eof) {
  char header[4];
  MH_RETURN_IF_ERROR(
      sock->ReadFull(header, sizeof(header), deadline, cancel, clean_eof));
  Slice header_slice(header, sizeof(header));
  uint32_t length = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&header_slice, &length));
  // Reject before allocating: a torn/hostile header must not drive a
  // multi-gigabyte resize.
  MH_RETURN_IF_ERROR(CheckBodyLength(length, max_frame_bytes));
  std::string body(length + 4, '\0');
  MH_RETURN_IF_ERROR(sock->ReadFull(body.data(), body.size(), deadline,
                                    cancel, nullptr));
  Slice trailer(body.data() + length, 4);
  uint32_t declared = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&trailer, &declared));
  MH_RETURN_IF_ERROR(CheckBodyCrc(Slice(body.data(), length), declared));
  frame->version = static_cast<uint8_t>(body[0]);
  frame->opcode = static_cast<uint8_t>(body[1]);
  frame->payload.assign(body, 2, length - 2);
  return Status::OK();
}

std::string EncodeResponsePayload(const Status& status,
                                  std::string_view result) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(&out,
                    Slice(status.message().data(), status.message().size()));
  out.append(result);
  return out;
}

Status DecodeResponsePayload(Slice* payload, Status* remote) {
  if (payload->empty()) {
    return Status::Corruption("empty response payload");
  }
  const uint8_t raw_code = (*payload)[0];
  payload->RemovePrefix(1);
  Slice message;
  MH_RETURN_IF_ERROR(GetLengthPrefixed(payload, &message));
  // Codes are appended-only in StatusCode, so any value past the known
  // range came from a newer/corrupt peer — surface as Internal.
  const auto code = static_cast<StatusCode>(raw_code);
  const StatusCode known = code > StatusCode::kDeadlineExceeded
                               ? StatusCode::kInternal
                               : code;
  *remote = known == StatusCode::kOk
                ? Status::OK()
                : Status(known, message.ToString());
  return Status::OK();
}

std::string EncodeGetSnapshotRequest(const std::string& model,
                                     int64_t sequence, int planes) {
  std::string out;
  PutLengthPrefixed(&out, Slice(model));
  PutVarint64(&out, sequence < 0 ? 0 : static_cast<uint64_t>(sequence) + 1);
  PutVarint64(&out, static_cast<uint64_t>(planes < 0 ? 0 : planes));
  return out;
}

Status DecodeGetSnapshotRequest(Slice payload, std::string* model,
                                int64_t* sequence, int* planes) {
  Slice name;
  MH_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &name));
  uint64_t seq_plus_one = 0;
  uint64_t raw_planes = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&payload, &seq_plus_one));
  MH_RETURN_IF_ERROR(GetVarint64(&payload, &raw_planes));
  if (raw_planes > 3) {
    return Status::InvalidArgument("planes must be 0 (exact) or 1..3, got " +
                                   std::to_string(raw_planes));
  }
  *model = name.ToString();
  *sequence = seq_plus_one == 0 ? -1 : static_cast<int64_t>(seq_plus_one) - 1;
  *planes = static_cast<int>(raw_planes);
  return Status::OK();
}

}  // namespace modelhub
