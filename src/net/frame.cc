#include "net/frame.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/macros.h"

namespace modelhub {

std::string_view OpcodeToString(uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kListModels:
      return "list_models";
    case Opcode::kGetSnapshot:
      return "get_snapshot";
    case Opcode::kDqlQuery:
      return "dql_query";
    case Opcode::kStats:
      return "stats";
    case Opcode::kShutdown:
      return "shutdown";
    case Opcode::kGetTrace:
      return "get_trace";
    case Opcode::kGetMetrics:
      return "get_metrics";
  }
  return "unknown";
}

namespace {

/// flags bit layout of the trace-context header (see kWireTraceFlag).
constexpr uint8_t kTraceFlagSampled = 0x01;
constexpr uint8_t kTraceFlagDeadlineExpired = 0x02;

std::string EncodeTraceHeader(const FrameTrace& trace) {
  std::string out;
  PutFixed64(&out, trace.trace_hi);
  PutFixed64(&out, trace.trace_lo);
  PutFixed64(&out, trace.span_id);
  uint8_t flags = 0;
  if (trace.sampled) flags |= kTraceFlagSampled;
  if (trace.deadline_expired) flags |= kTraceFlagDeadlineExpired;
  out.push_back(static_cast<char>(flags));
  PutVarint64(&out, trace.deadline_ms);
  return out;
}

Status DecodeTraceHeader(Slice* body, FrameTrace* trace) {
  MH_RETURN_IF_ERROR(GetFixed64(body, &trace->trace_hi));
  MH_RETURN_IF_ERROR(GetFixed64(body, &trace->trace_lo));
  MH_RETURN_IF_ERROR(GetFixed64(body, &trace->span_id));
  if (body->empty()) {
    return Status::Corruption("truncated trace header: missing flags");
  }
  const uint8_t flags = static_cast<uint8_t>((*body)[0]);
  body->RemovePrefix(1);
  trace->sampled = (flags & kTraceFlagSampled) != 0;
  trace->deadline_expired = (flags & kTraceFlagDeadlineExpired) != 0;
  uint64_t deadline_ms = 0;
  MH_RETURN_IF_ERROR(GetVarint64(body, &deadline_ms));
  trace->deadline_ms = static_cast<uint32_t>(
      deadline_ms > UINT32_MAX ? UINT32_MAX : deadline_ms);
  return Status::OK();
}

/// Shared body decoder for DecodeFrame/ReadFrame: splits version/opcode,
/// peels the optional trace header, leaves the payload.
Status ParseFrameBody(Slice body, Frame* frame) {
  uint8_t version = static_cast<uint8_t>(body[0]);
  frame->opcode = static_cast<uint8_t>(body[1]);
  body.RemovePrefix(kFrameHeaderBytes);
  frame->trace.reset();
  if ((version & kWireTraceFlag) != 0) {
    FrameTrace trace;
    MH_RETURN_IF_ERROR(DecodeTraceHeader(&body, &trace));
    frame->trace = trace;
    version &= static_cast<uint8_t>(~kWireTraceFlag);
  }
  frame->version = version;
  frame->payload = body.ToString();
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(uint8_t opcode, std::string_view payload,
                        const FrameTrace* trace) {
  std::string header;
  uint8_t version = kWireVersion;
  if (trace != nullptr) {
    version |= kWireTraceFlag;
    header = EncodeTraceHeader(*trace);
  }
  std::string out;
  out.reserve(payload.size() + header.size() + kFrameHeaderBytes + 8);
  PutFixed32(&out, static_cast<uint32_t>(payload.size() + header.size() +
                                         kFrameHeaderBytes));
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(opcode));
  out.append(header);
  out.append(payload);
  const uint32_t crc = Crc32(Slice(out.data() + 4, out.size() - 4));
  PutFixed32(&out, crc);
  return out;
}

namespace {

/// Validates a decoded length prefix without touching the body.
Status CheckBodyLength(uint64_t length, uint64_t max_frame_bytes) {
  if (length < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame body impossibly short: " +
                                   std::to_string(length) + " bytes");
  }
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds cap of " +
        std::to_string(max_frame_bytes));
  }
  return Status::OK();
}

Status CheckBodyCrc(Slice body, uint32_t declared) {
  if (Crc32(body) != declared) {
    return Status::Corruption("frame CRC mismatch (torn or corrupt frame)");
  }
  return Status::OK();
}

}  // namespace

Status DecodeFrame(Slice* input, Frame* frame, uint64_t max_frame_bytes) {
  if (input->size() < 4) {
    return Status::OutOfRange("truncated frame: missing length prefix");
  }
  Slice probe = *input;
  uint32_t length = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&probe, &length));
  MH_RETURN_IF_ERROR(CheckBodyLength(length, max_frame_bytes));
  if (probe.size() < static_cast<uint64_t>(length) + 4) {
    return Status::OutOfRange("truncated frame: body incomplete");
  }
  const Slice body = probe.SubSlice(0, length);
  probe.RemovePrefix(length);
  uint32_t declared = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&probe, &declared));
  MH_RETURN_IF_ERROR(CheckBodyCrc(body, declared));
  MH_RETURN_IF_ERROR(ParseFrameBody(body, frame));
  *input = probe;
  return Status::OK();
}

Status WriteFrame(Socket* sock, uint8_t opcode, std::string_view payload,
                  const Deadline& deadline, const std::atomic<bool>* cancel,
                  const FrameTrace* trace) {
  const std::string wire = EncodeFrame(opcode, payload, trace);
  return sock->WriteFull(wire.data(), wire.size(), deadline, cancel);
}

Status ReadFrame(Socket* sock, Frame* frame, uint64_t max_frame_bytes,
                 const Deadline& deadline, const std::atomic<bool>* cancel,
                 bool* clean_eof) {
  char header[4];
  MH_RETURN_IF_ERROR(
      sock->ReadFull(header, sizeof(header), deadline, cancel, clean_eof));
  Slice header_slice(header, sizeof(header));
  uint32_t length = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&header_slice, &length));
  // Reject before allocating: a torn/hostile header must not drive a
  // multi-gigabyte resize.
  MH_RETURN_IF_ERROR(CheckBodyLength(length, max_frame_bytes));
  std::string body(length + 4, '\0');
  MH_RETURN_IF_ERROR(sock->ReadFull(body.data(), body.size(), deadline,
                                    cancel, nullptr));
  Slice trailer(body.data() + length, 4);
  uint32_t declared = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&trailer, &declared));
  MH_RETURN_IF_ERROR(CheckBodyCrc(Slice(body.data(), length), declared));
  return ParseFrameBody(Slice(body.data(), length), frame);
}

TraceContext ContextFromFrame(const Frame& frame) {
  TraceContext ctx;
  if (!frame.trace.has_value()) return ctx;
  const FrameTrace& trace = *frame.trace;
  ctx.trace_hi = trace.trace_hi;
  ctx.trace_lo = trace.trace_lo;
  ctx.parent_span = trace.span_id;
  ctx.sampled = trace.sampled;
  if (trace.deadline_expired) {
    // The sender's budget was already gone: an immediately-past deadline
    // makes every span of this request carry the after_deadline marker.
    ctx.has_deadline = true;
    ctx.deadline = std::chrono::steady_clock::now();
  } else if (trace.deadline_ms > 0) {
    ctx.has_deadline = true;
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(trace.deadline_ms);
  }
  return ctx;
}

std::string EncodeResponsePayload(const Status& status,
                                  std::string_view result) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  PutLengthPrefixed(&out,
                    Slice(status.message().data(), status.message().size()));
  out.append(result);
  return out;
}

Status DecodeResponsePayload(Slice* payload, Status* remote) {
  if (payload->empty()) {
    return Status::Corruption("empty response payload");
  }
  const uint8_t raw_code = (*payload)[0];
  payload->RemovePrefix(1);
  Slice message;
  MH_RETURN_IF_ERROR(GetLengthPrefixed(payload, &message));
  // Codes are appended-only in StatusCode, so any value past the known
  // range came from a newer/corrupt peer — surface as Internal.
  const auto code = static_cast<StatusCode>(raw_code);
  const StatusCode known = code > StatusCode::kDeadlineExceeded
                               ? StatusCode::kInternal
                               : code;
  *remote = known == StatusCode::kOk
                ? Status::OK()
                : Status(known, message.ToString());
  return Status::OK();
}

std::string EncodeGetSnapshotRequest(const std::string& model,
                                     int64_t sequence, int planes) {
  std::string out;
  PutLengthPrefixed(&out, Slice(model));
  PutVarint64(&out, sequence < 0 ? 0 : static_cast<uint64_t>(sequence) + 1);
  PutVarint64(&out, static_cast<uint64_t>(planes < 0 ? 0 : planes));
  return out;
}

Status DecodeGetSnapshotRequest(Slice payload, std::string* model,
                                int64_t* sequence, int* planes) {
  Slice name;
  MH_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &name));
  uint64_t seq_plus_one = 0;
  uint64_t raw_planes = 0;
  MH_RETURN_IF_ERROR(GetVarint64(&payload, &seq_plus_one));
  MH_RETURN_IF_ERROR(GetVarint64(&payload, &raw_planes));
  if (raw_planes > 3) {
    return Status::InvalidArgument("planes must be 0 (exact) or 1..3, got " +
                                   std::to_string(raw_planes));
  }
  *model = name.ToString();
  *sequence = seq_plus_one == 0 ? -1 : static_cast<int64_t>(seq_plus_one) - 1;
  *planes = static_cast<int>(raw_planes);
  return Status::OK();
}

}  // namespace modelhub
