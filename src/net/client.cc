#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "common/random.h"
#include "common/trace.h"
#include "dlv/repository.h"

namespace modelhub {

Result<PingInfo> ParsePingReply(std::string_view reply) {
  if (reply.substr(0, 4) != "pong" ||
      (reply.size() > 4 && reply[4] != ' ')) {
    return Status::Corruption("not a ping reply: " + std::string(reply));
  }
  PingInfo info;
  size_t pos = 4;
  while (pos < reply.size()) {
    while (pos < reply.size() && reply[pos] == ' ') ++pos;
    const size_t end = std::min(reply.find(' ', pos), reply.size());
    const std::string_view token = reply.substr(pos, end - pos);
    const size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      const std::string_view key = token.substr(0, eq);
      const std::string value(token.substr(eq + 1));
      if (key == "state") {
        info.state = value;
      } else if (key == "queue") {
        info.queue_depth = std::atoll(value.c_str());
      } else if (key == "active") {
        info.active = std::atoll(value.c_str());
      }
      // Unknown keys are ignored: newer servers may append fields.
    }
    pos = end;
  }
  return info;
}

Result<ModelHubClient> ModelHubClient::Connect(const std::string& host,
                                               int port,
                                               ClientOptions options) {
  const int attempts = std::max(0, options.connect_retries) + 1;
  Rng jitter(static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  Status last = Status::Unavailable("connect never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with ±50% jitter so a thundering herd of
      // reconnecting clients spreads out over the restart window.
      const int64_t base = std::min<int64_t>(
          2000, static_cast<int64_t>(options.connect_backoff_ms)
                    << std::min(attempt - 1, 10));
      const int64_t wait_ms =
          base / 2 + static_cast<int64_t>(jitter.Uniform(
                         static_cast<uint64_t>(std::max<int64_t>(1, base))));
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
    auto sock = Socket::Connect(
        host, port, Deadline::AfterMs(options.connect_timeout_ms));
    if (sock.ok()) return ModelHubClient(sock.MoveValue(), options);
    last = sock.status();
    // Only "peer unreachable" is worth waiting out; anything else
    // (bad address, local socket failure) will not improve with time.
    if (!last.IsUnavailable()) break;
  }
  return last;
}

Result<WireResponse> ModelHubClient::CallDetailed(uint8_t opcode,
                                                  std::string_view payload) {
  const Deadline deadline = Deadline::AfterMs(options_.op_timeout_ms);
  // An active thread-local trace context rides the wire: the receiver's
  // root spans parent to our innermost open span, and the remaining
  // deadline budget shrinks hop by hop.
  FrameTrace trace;
  const FrameTrace* trace_ptr = nullptr;
  const TraceContext& ctx = CurrentTraceContext();
  if (ctx.active()) {
    trace.trace_hi = ctx.trace_hi;
    trace.trace_lo = ctx.trace_lo;
    const uint64_t current = CurrentSpanId();
    trace.span_id = current != 0 ? current : ctx.parent_span;
    trace.sampled = ctx.sampled;
    uint64_t budget_ms = static_cast<uint64_t>(
        std::max(1, options_.op_timeout_ms));
    if (ctx.has_deadline) {
      const uint64_t remaining = ctx.deadline_remaining_ms();
      if (remaining == 0) {
        trace.deadline_expired = true;
        budget_ms = 1;
      } else {
        budget_ms = std::min(budget_ms, remaining);
      }
    }
    trace.deadline_ms = static_cast<uint32_t>(
        budget_ms > UINT32_MAX ? UINT32_MAX : budget_ms);
    trace_ptr = &trace;
  }
  MH_RETURN_IF_ERROR(
      WriteFrame(&sock_, opcode, payload, deadline, nullptr, trace_ptr));
  Frame response;
  MH_RETURN_IF_ERROR(ReadFrame(&sock_, &response, options_.max_frame_bytes,
                               deadline));
  if (response.version != kWireVersion) {
    return Status::InvalidArgument(
        "server speaks wire version " + std::to_string(response.version) +
        ", client speaks " + std::to_string(kWireVersion));
  }
  Slice result(response.payload);
  WireResponse out;
  MH_RETURN_IF_ERROR(DecodeResponsePayload(&result, &out.remote));
  if (out.remote.ok() && response.opcode != opcode) {
    // Error frames need not echo the opcode: a load-shedding server
    // refuses before it ever reads the request.
    return Status::Corruption("response opcode " +
                              std::to_string(response.opcode) +
                              " does not match request opcode " +
                              std::to_string(opcode));
  }
  out.result = result.ToString();
  return out;
}

Result<std::string> ModelHubClient::Call(uint8_t opcode,
                                         std::string_view payload) {
  MH_ASSIGN_OR_RETURN(WireResponse response, CallDetailed(opcode, payload));
  if (!response.remote.ok()) {
    return Status(response.remote.code(),
                  "server: " + response.remote.message());
  }
  return std::move(response.result);
}

Result<std::string> ModelHubClient::Ping() {
  return Call(static_cast<uint8_t>(Opcode::kPing), "");
}

Result<std::string> ModelHubClient::ListModels() {
  return Call(static_cast<uint8_t>(Opcode::kListModels), "");
}

Result<std::vector<NamedParam>> ModelHubClient::GetSnapshot(
    const std::string& model, int64_t sequence) {
  MH_ASSIGN_OR_RETURN(
      std::string bytes,
      Call(static_cast<uint8_t>(Opcode::kGetSnapshot),
           EncodeGetSnapshotRequest(model, sequence, /*planes=*/0)));
  return ParseParams(Slice(bytes));
}

Result<std::string> ModelHubClient::GetSnapshotBounds(const std::string& model,
                                                      int64_t sequence,
                                                      int planes) {
  if (planes < 1 || planes > 3) {
    return Status::InvalidArgument("bounded retrieval needs planes in 1..3");
  }
  return Call(static_cast<uint8_t>(Opcode::kGetSnapshot),
              EncodeGetSnapshotRequest(model, sequence, planes));
}

Result<std::string> ModelHubClient::Query(const std::string& dql) {
  return Call(static_cast<uint8_t>(Opcode::kDqlQuery), dql);
}

Result<std::string> ModelHubClient::Stats() {
  return Call(static_cast<uint8_t>(Opcode::kStats), "");
}

Result<std::string> ModelHubClient::Metrics() {
  return Call(static_cast<uint8_t>(Opcode::kGetMetrics), "");
}

Result<std::string> ModelHubClient::GetTraceDump() {
  return Call(static_cast<uint8_t>(Opcode::kGetTrace), "");
}

Status ModelHubClient::Shutdown() {
  return Call(static_cast<uint8_t>(Opcode::kShutdown), "").status();
}

}  // namespace modelhub
