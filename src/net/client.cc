#include "net/client.h"

#include "common/macros.h"
#include "dlv/repository.h"

namespace modelhub {

Result<ModelHubClient> ModelHubClient::Connect(const std::string& host,
                                               int port,
                                               ClientOptions options) {
  MH_ASSIGN_OR_RETURN(
      Socket sock,
      Socket::Connect(host, port,
                      Deadline::AfterMs(options.connect_timeout_ms)));
  return ModelHubClient(std::move(sock), options);
}

Result<std::string> ModelHubClient::Call(uint8_t opcode,
                                         std::string_view payload) {
  const Deadline deadline = Deadline::AfterMs(options_.op_timeout_ms);
  MH_RETURN_IF_ERROR(WriteFrame(&sock_, opcode, payload, deadline));
  Frame response;
  MH_RETURN_IF_ERROR(ReadFrame(&sock_, &response, options_.max_frame_bytes,
                               deadline));
  if (response.version != kWireVersion) {
    return Status::InvalidArgument(
        "server speaks wire version " + std::to_string(response.version) +
        ", client speaks " + std::to_string(kWireVersion));
  }
  Slice result(response.payload);
  Status remote;
  MH_RETURN_IF_ERROR(DecodeResponsePayload(&result, &remote));
  if (!remote.ok()) {
    // Error frames need not echo the opcode: a load-shedding server
    // refuses before it ever reads the request.
    return Status(remote.code(), "server: " + remote.message());
  }
  if (response.opcode != opcode) {
    return Status::Corruption("response opcode " +
                              std::to_string(response.opcode) +
                              " does not match request opcode " +
                              std::to_string(opcode));
  }
  return result.ToString();
}

Result<std::string> ModelHubClient::Ping() {
  return Call(static_cast<uint8_t>(Opcode::kPing), "");
}

Result<std::string> ModelHubClient::ListModels() {
  return Call(static_cast<uint8_t>(Opcode::kListModels), "");
}

Result<std::vector<NamedParam>> ModelHubClient::GetSnapshot(
    const std::string& model, int64_t sequence) {
  MH_ASSIGN_OR_RETURN(
      std::string bytes,
      Call(static_cast<uint8_t>(Opcode::kGetSnapshot),
           EncodeGetSnapshotRequest(model, sequence, /*planes=*/0)));
  return ParseParams(Slice(bytes));
}

Result<std::string> ModelHubClient::GetSnapshotBounds(const std::string& model,
                                                      int64_t sequence,
                                                      int planes) {
  if (planes < 1 || planes > 3) {
    return Status::InvalidArgument("bounded retrieval needs planes in 1..3");
  }
  return Call(static_cast<uint8_t>(Opcode::kGetSnapshot),
              EncodeGetSnapshotRequest(model, sequence, planes));
}

Result<std::string> ModelHubClient::Query(const std::string& dql) {
  return Call(static_cast<uint8_t>(Opcode::kDqlQuery), dql);
}

Result<std::string> ModelHubClient::Stats() {
  return Call(static_cast<uint8_t>(Opcode::kStats), "");
}

Status ModelHubClient::Shutdown() {
  return Call(static_cast<uint8_t>(Opcode::kShutdown), "").status();
}

}  // namespace modelhub
