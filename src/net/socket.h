#ifndef MODELHUB_NET_SOCKET_H_
#define MODELHUB_NET_SOCKET_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace modelhub {

/// An absolute per-operation deadline for socket I/O (DESIGN.md §9).
/// Deadlines are absolute so one budget spans a multi-read frame parse:
/// every retry of a short read consumes the same clock, not a fresh
/// timeout.
class Deadline {
 public:
  /// No deadline: operations block until completion or error.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (<= 0 expires immediately).
  static Deadline AfterMs(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return infinite_; }

  /// Milliseconds until expiry, clamped to >= 0. Meaningless if infinite.
  int RemainingMs() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    return left.count() < 0 ? 0 : static_cast<int>(left.count());
  }

  bool Expired() const { return !infinite_ && RemainingMs() == 0; }

 private:
  Deadline() = default;
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_;
};

/// RAII wrapper over a POSIX stream-socket fd: closes on destruction,
/// move-only, and provides full-length read/write loops that absorb EINTR
/// and short I/O, enforce deadlines with poll(), and never raise SIGPIPE.
///
/// All errors are typed Statuses: kDeadlineExceeded (op deadline expired),
/// kUnavailable (peer unreachable / cancelled), kIOError (everything
/// else). A clean peer close before the first byte of a read is reported
/// through `clean_eof` so framed protocols can tell "client hung up
/// between requests" from "stream torn mid-frame".
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Connects a TCP socket to `host`:`port` within `deadline`.
  /// A refused / unreachable / timed-out connect returns kUnavailable so
  /// callers (dlv rpc) can distinguish "no server" from a served error.
  static Result<Socket> Connect(const std::string& host, int port,
                                const Deadline& deadline);

  /// Reads exactly `n` bytes. Loops over short reads, retries EINTR, and
  /// polls with `deadline`. When `cancel` is non-null it is checked about
  /// every 100ms and aborts the read with kUnavailable ("cancelled") —
  /// the graceful-drain hook. If the peer closed before the first byte,
  /// sets `*clean_eof` (when provided) and returns kIOError.
  Status ReadFull(void* buf, size_t n, const Deadline& deadline,
                  const std::atomic<bool>* cancel = nullptr,
                  bool* clean_eof = nullptr);

  /// Writes exactly `n` bytes, with the same EINTR/short-write/deadline/
  /// cancel handling as ReadFull. SIGPIPE is suppressed (MSG_NOSIGNAL);
  /// a closed peer surfaces as kIOError.
  Status WriteFull(const void* buf, size_t n, const Deadline& deadline,
                   const std::atomic<bool>* cancel = nullptr);

 private:
  /// Polls for `events` readiness within the deadline / cancel window.
  Status WaitReady(short events, const Deadline& deadline,
                   const std::atomic<bool>* cancel);

  int fd_ = -1;
};

/// A listening TCP socket plus a self-pipe so a blocked Accept() can be
/// woken for shutdown without closing the fd under it.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `host`:`port` (port 0 picks an ephemeral port —
  /// read it back with port()).
  static Result<Listener> Bind(const std::string& host, int port,
                               int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolved via getsockname after Bind).
  int port() const { return port_; }

  /// Blocks until a connection arrives or Wake() is called. A wake (or a
  /// closed listener) returns kUnavailable("listener woken"). The wake
  /// byte is left in the pipe, so every later Accept() returns
  /// immediately — a woken listener stays woken.
  Result<Socket> Accept();

  /// Like Accept(), but gives up after `timeout_ms` milliseconds with
  /// kDeadlineExceeded (timeout_ms < 0 blocks forever). Unlike Accept(),
  /// a wake DRAINS the pipe before returning kUnavailable, so the caller
  /// can keep accepting afterwards — the drain-grace accept loop's
  /// contract (one Wake = one wakeup, not a latch).
  Result<Socket> Accept(int timeout_ms);

  /// Wakes a blocked Accept(). Only writes to a pipe, so it is safe from
  /// any thread (and from contexts that must not take locks).
  void Wake();

 private:
  int fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  ///< [0] polled by Accept, [1] written by Wake.
};

}  // namespace modelhub

#endif  // MODELHUB_NET_SOCKET_H_
