#include "net/fault.h"

namespace modelhub {

NetFaultInjector* NetFaultInjector::Global() {
  static NetFaultInjector* injector = new NetFaultInjector();
  return injector;
}

void NetFaultInjector::RecomputeEnabled() {
  enabled_.store(fail_connects_ > 0 || !refused_ports_.empty() ||
                     tear_armed_ || read_delay_ms_ > 0 || write_delay_ms_ > 0,
                 std::memory_order_relaxed);
}

void NetFaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_connects_ = 0;
  refused_ports_.clear();
  tear_armed_ = false;
  tear_after_bytes_ = 0;
  read_delay_ms_ = 0;
  write_delay_ms_ = 0;
  RecomputeEnabled();
}

void NetFaultInjector::FailNextConnects(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_connects_ = n;
  RecomputeEnabled();
}

void NetFaultInjector::RefuseConnectsToPort(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  refused_ports_.insert(port);
  RecomputeEnabled();
}

void NetFaultInjector::AllowConnectsToPort(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  refused_ports_.erase(port);
  RecomputeEnabled();
}

void NetFaultInjector::TearNextWriteAfter(size_t after_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  tear_armed_ = true;
  tear_after_bytes_ = after_bytes;
  RecomputeEnabled();
}

void NetFaultInjector::DelayNextReadMs(int ms) {
  std::lock_guard<std::mutex> lock(mu_);
  read_delay_ms_ = ms;
  RecomputeEnabled();
}

void NetFaultInjector::DelayNextWriteMs(int ms) {
  std::lock_guard<std::mutex> lock(mu_);
  write_delay_ms_ = ms;
  RecomputeEnabled();
}

Status NetFaultInjector::OnConnect(const std::string& host, int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (refused_ports_.count(port) != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) +
                               ": injected connect refusal (port)");
  }
  if (fail_connects_ > 0) {
    --fail_connects_;
    RecomputeEnabled();
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) +
                               ": injected connect refusal");
  }
  return Status::OK();
}

bool NetFaultInjector::ConsumeWriteTear(size_t* after_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tear_armed_) return false;
  tear_armed_ = false;
  *after_bytes = tear_after_bytes_;
  RecomputeEnabled();
  return true;
}

int NetFaultInjector::ConsumeReadDelayMs() {
  std::lock_guard<std::mutex> lock(mu_);
  const int ms = read_delay_ms_;
  read_delay_ms_ = 0;
  if (ms > 0) RecomputeEnabled();
  return ms;
}

int NetFaultInjector::ConsumeWriteDelayMs() {
  std::lock_guard<std::mutex> lock(mu_);
  const int ms = write_delay_ms_;
  write_delay_ms_ = 0;
  if (ms > 0) RecomputeEnabled();
  return ms;
}

}  // namespace modelhub
