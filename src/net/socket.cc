#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "common/macros.h"
#include "net/fault.h"

namespace modelhub {

namespace {

/// Cancellation is polled at this granularity so a graceful drain never
/// waits longer than one slice for an idle connection to notice.
constexpr int kCancelSliceMs = 100;

std::string Errno(const char* what) {
  return std::string(what) + ": " + strerror(errno);
}

/// Resolves "localhost" / dotted-quad IPv4 into a sockaddr_in. The serving
/// layer is loopback/LAN-oriented; names beyond localhost are out of scope
/// (no getaddrinfo, keeping the layer dependency- and thread-trivial).
Status FillAddr(const std::string& host, int port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  const std::string node = (host.empty() || host == "localhost")
                               ? std::string("127.0.0.1")
                               : host;
  if (inet_pton(AF_INET, node.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

Status Socket::WaitReady(short events, const Deadline& deadline,
                         const std::atomic<bool>* cancel) {
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return Status::Unavailable("cancelled");
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("socket op deadline expired");
    }
    int wait_ms = deadline.infinite() ? -1 : deadline.RemainingMs();
    if (cancel != nullptr && (wait_ms < 0 || wait_ms > kCancelSliceMs)) {
      wait_ms = kCancelSliceMs;
    }
    pollfd pfd = {fd_, events, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll"));
    }
    if (rc > 0) return Status::OK();
    // Timed out this slice; loop re-checks cancel/deadline.
  }
}

Status Socket::ReadFull(void* buf, size_t n, const Deadline& deadline,
                        const std::atomic<bool>* cancel, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  NetFaultInjector* faults = NetFaultInjector::Global();
  if (faults->enabled()) {
    const int delay_ms = faults->ConsumeReadDelayMs();
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    Status ready = WaitReady(POLLIN, deadline, cancel);
    if (!ready.ok()) return ready;
    const ssize_t got = ::recv(fd_, out + done, n - done, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(Errno("recv"));
    }
    if (got == 0) {
      if (done == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IOError("connection closed by peer after " +
                             std::to_string(done) + "/" + std::to_string(n) +
                             " bytes");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status Socket::WriteFull(const void* buf, size_t n, const Deadline& deadline,
                         const std::atomic<bool>* cancel) {
  NetFaultInjector* faults = NetFaultInjector::Global();
  if (faults->enabled()) {
    const int delay_ms = faults->ConsumeWriteDelayMs();
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    size_t tear_after = 0;
    if (faults->ConsumeWriteTear(&tear_after) && tear_after < n) {
      // Push the allowed prefix onto the wire (the peer sees a frame cut
      // mid-body), then hard-close so the stream is torn, not cleanly
      // ended.
      if (tear_after > 0) (void)WriteFull(buf, tear_after, deadline, cancel);
      Close();
      return Status::IOError("injected torn write after " +
                             std::to_string(tear_after) + "/" +
                             std::to_string(n) + " bytes");
    }
  }
  const char* in = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    Status ready = WaitReady(POLLOUT, deadline, cancel);
    if (!ready.ok()) return ready;
    const ssize_t put = ::send(fd_, in + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::IOError("connection closed by peer during write");
      }
      return Status::IOError(Errno("send"));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Result<Socket> Socket::Connect(const std::string& host, int port,
                               const Deadline& deadline) {
  NetFaultInjector* faults = NetFaultInjector::Global();
  if (faults->enabled()) {
    MH_RETURN_IF_ERROR(faults->OnConnect(host, port));
  }
  sockaddr_in addr;
  MH_RETURN_IF_ERROR(FillAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  Socket sock(fd);
  // Non-blocking connect so the deadline also bounds the handshake.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               strerror(errno));
  }
  if (rc < 0) {
    Status ready = sock.WaitReady(POLLOUT, deadline, nullptr);
    if (ready.IsDeadlineExceeded()) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": timed out");
    }
    if (!ready.ok()) return ready;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // Back to blocking; I/O paths poll anyway.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  wake_pipe_[0] = other.wake_pipe_[0];
  wake_pipe_[1] = other.wake_pipe_[1];
  other.fd_ = -1;
  other.wake_pipe_[0] = other.wake_pipe_[1] = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    this->~Listener();
    new (this) Listener(std::move(other));
  }
  return *this;
}

Result<Listener> Listener::Bind(const std::string& host, int port,
                                int backlog) {
  sockaddr_in addr;
  MH_RETURN_IF_ERROR(FillAddr(host, port, &addr));
  Listener listener;
  listener.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener.fd_ < 0) return Status::IOError(Errno("socket"));
  const int one = 1;
  ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listener.fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::Unavailable("bind " + host + ":" + std::to_string(port) +
                               ": " + strerror(errno));
  }
  if (::listen(listener.fd_, backlog) < 0) {
    return Status::IOError(Errno("listen"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::IOError(Errno("getsockname"));
  }
  listener.port_ = ntohs(addr.sin_port);
  if (::pipe(listener.wake_pipe_) < 0) {
    return Status::IOError(Errno("pipe"));
  }
  return listener;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll(accept)"));
    }
    if (pfds[1].revents != 0) {
      return Status::Unavailable("listener woken");
    }
    if (pfds[0].revents == 0) continue;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(Errno("accept"));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

Result<Socket> Listener::Accept(int timeout_ms) {
  for (;;) {
    pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(pfds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll(accept)"));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded("accept timed out");
    }
    if (pfds[1].revents != 0) {
      char drained[64];
      ssize_t n;
      do {
        n = ::read(wake_pipe_[0], drained, sizeof(drained));
      } while (n == static_cast<ssize_t>(sizeof(drained)) ||
               (n < 0 && errno == EINTR));
      return Status::Unavailable("listener woken");
    }
    if (pfds[0].revents == 0) continue;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(Errno("accept"));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

void Listener::Wake() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 'w';
  ssize_t rc;
  do {
    rc = ::write(wake_pipe_[1], &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace modelhub
