#ifndef MODELHUB_TENSOR_FLOAT_MATRIX_H_
#define MODELHUB_TENSOR_FLOAT_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace modelhub {

/// A dense row-major float32 matrix. This is PAS's first-class data type:
/// every learned parameter blob in a snapshot is viewed as a FloatMatrix
/// (Sec. IV-A of the paper; bias vectors are 1 x n matrices, conv kernels
/// are flattened to out_channels x (in_channels * kh * kw)).
class FloatMatrix {
 public:
  /// An empty 0 x 0 matrix.
  FloatMatrix() = default;

  /// A rows x cols matrix initialized to zero.
  FloatMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols)) {}

  /// A rows x cols matrix adopting `data` (size must be rows * cols).
  FloatMatrix(int64_t rows, int64_t cols, std::vector<float> data);

  FloatMatrix(const FloatMatrix&) = default;
  FloatMatrix& operator=(const FloatMatrix&) = default;
  FloatMatrix(FloatMatrix&&) noexcept = default;
  FloatMatrix& operator=(FloatMatrix&&) noexcept = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }
  float& At(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  float operator()(int64_t r, int64_t c) const { return At(r, c); }
  float& operator()(int64_t r, int64_t c) { return At(r, c); }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  /// Fills every entry with `value`.
  void Fill(float value);

  /// Fills with N(0, stddev) noise from `rng`.
  void FillGaussian(Rng* rng, float stddev);

  /// Fills with U[lo, hi) noise from `rng`.
  void FillUniform(Rng* rng, float lo, float hi);

  /// Elementwise subtraction (this - other). Shapes must match.
  Result<FloatMatrix> Sub(const FloatMatrix& other) const;

  /// Elementwise addition. Shapes must match.
  Result<FloatMatrix> Add(const FloatMatrix& other) const;

  /// Bitwise XOR of the IEEE-754 representations (the paper's Delta-XOR).
  Result<FloatMatrix> BitwiseXor(const FloatMatrix& other) const;

  float Min() const;
  float Max() const;
  double Mean() const;
  double L2Norm() const;

  /// True when shapes match and entries differ by at most `tol`.
  bool ApproxEquals(const FloatMatrix& other, float tol) const;

  /// True when shapes and the exact bit patterns match.
  bool BitEquals(const FloatMatrix& other) const;

  /// Raw little-endian float32 serialization (rows * cols * 4 bytes; shape
  /// is carried out-of-band by the archive manifest).
  std::string ToBytes() const;

  /// Inverse of ToBytes. `bytes.size()` must equal rows * cols * 4.
  static Result<FloatMatrix> FromBytes(int64_t rows, int64_t cols,
                                       Slice bytes);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace modelhub

#endif  // MODELHUB_TENSOR_FLOAT_MATRIX_H_
