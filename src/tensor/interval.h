#ifndef MODELHUB_TENSOR_INTERVAL_H_
#define MODELHUB_TENSOR_INTERVAL_H_

#include <algorithm>

#include "common/result.h"
#include "tensor/float_matrix.h"
#include "tensor/tensor.h"

namespace modelhub {

/// A closed real interval [lo, hi]. The progressive query evaluator
/// (Sec. IV-D) propagates intervals through the network when only the
/// high-order bytes of the weights have been retrieved.
struct Interval {
  float lo = 0.0f;
  float hi = 0.0f;

  Interval() = default;
  Interval(float lo_in, float hi_in) : lo(lo_in), hi(hi_in) {}
  /// The degenerate interval [v, v].
  explicit Interval(float v) : lo(v), hi(v) {}

  float Width() const { return hi - lo; }
  bool Contains(float v) const { return lo <= v && v <= hi; }

  Interval operator+(const Interval& o) const {
    return Interval(lo + o.lo, hi + o.hi);
  }
  Interval operator-(const Interval& o) const {
    return Interval(lo - o.hi, hi - o.lo);
  }
  /// Sound interval product: min/max over the four endpoint products.
  Interval operator*(const Interval& o) const {
    const float a = lo * o.lo;
    const float b = lo * o.hi;
    const float c = hi * o.lo;
    const float d = hi * o.hi;
    return Interval(std::min(std::min(a, b), std::min(c, d)),
                    std::max(std::max(a, b), std::max(c, d)));
  }
};

inline Interval Union(const Interval& a, const Interval& b) {
  return Interval(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

/// An interval-valued matrix represented as elementwise lower/upper bound
/// matrices of identical shape. Weight matrices recovered from partial
/// (high-order-byte) retrieval are IntervalMatrix instances.
class IntervalMatrix {
 public:
  IntervalMatrix() = default;

  /// Bounds must have identical shapes and satisfy lo <= hi elementwise.
  static Result<IntervalMatrix> FromBounds(FloatMatrix lo, FloatMatrix hi);

  /// The exact (zero-width) interval matrix [m, m].
  static IntervalMatrix FromExact(const FloatMatrix& m) {
    IntervalMatrix im;
    im.lo_ = m;
    im.hi_ = m;
    return im;
  }

  int64_t rows() const { return lo_.rows(); }
  int64_t cols() const { return lo_.cols(); }

  Interval At(int64_t r, int64_t c) const {
    return Interval(lo_.At(r, c), hi_.At(r, c));
  }

  const FloatMatrix& lo() const { return lo_; }
  const FloatMatrix& hi() const { return hi_; }

  /// Maximum elementwise width — a measure of retrieval uncertainty.
  float MaxWidth() const;

  /// True when every entry of `m` lies inside the corresponding interval
  /// (soundness check used by tests).
  bool Contains(const FloatMatrix& m) const;

 private:
  FloatMatrix lo_;
  FloatMatrix hi_;
};

/// Interval-valued NCHW activations: elementwise bounds on every neuron
/// output, carried layer to layer by the interval forward pass.
struct IntervalTensor {
  Tensor lo;
  Tensor hi;

  IntervalTensor() = default;
  IntervalTensor(int64_t n, int64_t c, int64_t h, int64_t w)
      : lo(n, c, h, w), hi(n, c, h, w) {}

  /// The degenerate interval tensor [t, t].
  static IntervalTensor FromExact(const Tensor& t) {
    IntervalTensor it;
    it.lo = t;
    it.hi = t;
    return it;
  }

  /// True when every entry of `t` lies within bounds (soundness check).
  bool Contains(const Tensor& t, float slack = 0.0f) const;
};

}  // namespace modelhub

#endif  // MODELHUB_TENSOR_INTERVAL_H_
