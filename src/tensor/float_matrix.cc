#include "tensor/float_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace modelhub {

FloatMatrix::FloatMatrix(int64_t rows, int64_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  MH_CHECK(static_cast<int64_t>(data_.size()) == rows_ * cols_);
}

void FloatMatrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void FloatMatrix::FillGaussian(Rng* rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
}

void FloatMatrix::FillUniform(Rng* rng, float lo, float hi) {
  for (float& v : data_) {
    v = rng->UniformFloat(lo, hi);
  }
}

Result<FloatMatrix> FloatMatrix::Sub(const FloatMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("Sub: shape mismatch");
  }
  FloatMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Result<FloatMatrix> FloatMatrix::Add(const FloatMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  FloatMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Result<FloatMatrix> FloatMatrix::BitwiseXor(const FloatMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("BitwiseXor: shape mismatch");
  }
  FloatMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    uint32_t a;
    uint32_t b;
    std::memcpy(&a, &data_[i], 4);
    std::memcpy(&b, &other.data_[i], 4);
    const uint32_t x = a ^ b;
    std::memcpy(&out.data_[i], &x, 4);
  }
  return out;
}

float FloatMatrix::Min() const {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::min(m, v);
  return m;
}

float FloatMatrix::Max() const {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::max(m, v);
  return m;
}

double FloatMatrix::Mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

double FloatMatrix::L2Norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

bool FloatMatrix::ApproxEquals(const FloatMatrix& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool FloatMatrix::BitEquals(const FloatMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return data_.empty() ||
         std::memcmp(data_.data(), other.data_.data(),
                     data_.size() * sizeof(float)) == 0;
}

std::string FloatMatrix::ToBytes() const {
  std::string out(data_.size() * sizeof(float), '\0');
  if (!data_.empty()) {
    std::memcpy(out.data(), data_.data(), out.size());
  }
  return out;
}

Result<FloatMatrix> FloatMatrix::FromBytes(int64_t rows, int64_t cols,
                                           Slice bytes) {
  const size_t expected = static_cast<size_t>(rows * cols) * sizeof(float);
  if (bytes.size() != expected) {
    return Status::InvalidArgument("FromBytes: byte count does not match shape");
  }
  std::vector<float> data(static_cast<size_t>(rows * cols));
  if (!data.empty()) {
    std::memcpy(data.data(), bytes.data(), expected);
  }
  return FloatMatrix(rows, cols, std::move(data));
}

}  // namespace modelhub
