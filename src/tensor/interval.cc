#include "tensor/interval.h"

namespace modelhub {

Result<IntervalMatrix> IntervalMatrix::FromBounds(FloatMatrix lo,
                                                  FloatMatrix hi) {
  if (lo.rows() != hi.rows() || lo.cols() != hi.cols()) {
    return Status::InvalidArgument("IntervalMatrix: bound shape mismatch");
  }
  for (int64_t i = 0; i < lo.size(); ++i) {
    if (lo.data()[i] > hi.data()[i]) {
      return Status::InvalidArgument("IntervalMatrix: lo > hi");
    }
  }
  IntervalMatrix im;
  im.lo_ = std::move(lo);
  im.hi_ = std::move(hi);
  return im;
}

float IntervalMatrix::MaxWidth() const {
  float w = 0.0f;
  for (int64_t i = 0; i < lo_.size(); ++i) {
    w = std::max(w, hi_.data()[i] - lo_.data()[i]);
  }
  return w;
}

bool IntervalMatrix::Contains(const FloatMatrix& m) const {
  if (m.rows() != rows() || m.cols() != cols()) return false;
  for (int64_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] < lo_.data()[i] || m.data()[i] > hi_.data()[i]) {
      return false;
    }
  }
  return true;
}

bool IntervalTensor::Contains(const Tensor& t, float slack) const {
  if (!t.SameShape(lo)) return false;
  for (size_t i = 0; i < t.data().size(); ++i) {
    if (t.data()[i] < lo.data()[i] - slack ||
        t.data()[i] > hi.data()[i] + slack) {
      return false;
    }
  }
  return true;
}

}  // namespace modelhub
