#include "tensor/tensor.h"

#include <cstdio>

namespace modelhub {

std::string Tensor::ShapeString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%lld,%lld,%lld,%lld]",
                static_cast<long long>(n_), static_cast<long long>(c_),
                static_cast<long long>(h_), static_cast<long long>(w_));
  return buf;
}

}  // namespace modelhub
