#ifndef MODELHUB_TENSOR_TENSOR_H_
#define MODELHUB_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace modelhub {

/// A dense NCHW float tensor used for activations in the NN engine. Kept
/// deliberately simple: the engine is a substrate for PAS experiments, not
/// a performance contribution.
class Tensor {
 public:
  Tensor() = default;

  Tensor(int64_t n, int64_t c, int64_t h, int64_t w)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<size_t>(n * c * h * w)) {}

  int64_t n() const { return n_; }
  int64_t c() const { return c_; }
  int64_t h() const { return h_; }
  int64_t w() const { return w_; }
  int64_t size() const { return n_ * c_ * h_ * w_; }
  bool empty() const { return size() == 0; }

  /// Per-sample flattened length (C*H*W) — the fully-connected fan-in.
  int64_t SampleSize() const { return c_ * h_ * w_; }

  float At(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[((n * c_ + c) * h_ + h) * w_ + w];
  }
  float& At(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[((n * c_ + c) * h_ + h) * w_ + w];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  bool SameShape(const Tensor& other) const {
    return n_ == other.n_ && c_ == other.c_ && h_ == other.h_ &&
           w_ == other.w_;
  }

  std::string ShapeString() const;

 private:
  int64_t n_ = 0;
  int64_t c_ = 0;
  int64_t h_ = 0;
  int64_t w_ = 0;
  std::vector<float> data_;
};

}  // namespace modelhub

#endif  // MODELHUB_TENSOR_TENSOR_H_
