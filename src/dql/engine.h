#ifndef MODELHUB_DQL_ENGINE_H_
#define MODELHUB_DQL_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "dql/ast.h"
#include "nn/network_def.h"

namespace modelhub {

/// DQL engine knobs.
struct DqlOptions {
  /// Commit slice/construct results and kept evaluate models back into the
  /// repository (as the paper's workflow does).
  bool commit_results = true;
  /// Training length when the config does not specify iterations and the
  /// query has no keep(..., iterations) clause.
  int64_t default_iterations = 60;
  int64_t default_batch_size = 16;
  uint64_t seed = 1;
};

/// One trained candidate from an evaluate query.
struct EvaluatedModel {
  std::string name;  ///< Committed version name (or candidate id).
  std::string source;  ///< The version / network it derived from.
  std::map<std::string, std::string> config;
  double loss = 0.0;
  double accuracy = 0.0;
};

/// The result of running one DQL statement.
struct DqlResult {
  dql::Query::Kind kind = dql::Query::Kind::kSelect;
  /// select: matching version names.
  std::vector<std::string> model_names;
  /// slice / construct: derived network definitions (also committed when
  /// DqlOptions.commit_results is set).
  std::vector<NetworkDef> networks;
  /// evaluate: the kept models, best first.
  std::vector<EvaluatedModel> evaluated;
};

/// Executes DQL queries against a DLV repository ("dlv query ..."). The
/// engine owns no state beyond configuration; datasets for evaluate
/// queries are registered by name ("default" is used when the query does
/// not vary config.input_data).
class DqlEngine {
 public:
  DqlEngine(Repository* repo, DqlOptions options = {})
      : repo_(repo), options_(options) {}

  /// Registers a dataset usable via `vary config.input_data in ["name"]`.
  /// The first registered dataset (or one named "default") is the default.
  void RegisterDataset(const std::string& name, const Dataset* dataset);

  /// Parses and executes one statement.
  Result<DqlResult> Run(const std::string& query_text);

  /// Executes a parsed statement.
  Result<DqlResult> Execute(const dql::Query& query);

 private:
  struct Candidate {
    NetworkDef def;
    std::string source;  ///< Version name it derived from ("" if fresh).
  };

  Result<std::vector<std::string>> MatchingVersions(
      const dql::Condition& condition) const;
  Result<bool> Matches(const std::string& version_name,
                       const dql::Condition& condition) const;
  Result<bool> MatchesPredicate(const std::string& version_name,
                                const dql::Predicate& predicate) const;

  Result<DqlResult> ExecuteSelect(const dql::SelectQuery& query) const;
  Result<DqlResult> ExecuteSlice(const dql::SliceQuery& query);
  Result<DqlResult> ExecuteConstruct(const dql::ConstructQuery& query);
  Result<DqlResult> ExecuteEvaluate(const dql::EvaluateQuery& query);

  Result<std::vector<Candidate>> EvaluateCandidates(
      const dql::EvaluateQuery& query);

  Status MaybeCommitNetwork(const NetworkDef& def, const std::string& parent,
                            const std::string& message);

  Repository* repo_;
  DqlOptions options_;
  std::map<std::string, const Dataset*> datasets_;
};

/// SQL LIKE matching ('%' = any run, '_' = any single char).
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace modelhub

#endif  // MODELHUB_DQL_ENGINE_H_
