#ifndef MODELHUB_DQL_ENGINE_H_
#define MODELHUB_DQL_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "dlv/repository.h"
#include "dql/ast.h"
#include "nn/network_def.h"

namespace modelhub {

/// DQL engine knobs.
struct DqlOptions {
  /// Commit slice/construct results and kept evaluate models back into the
  /// repository (as the paper's workflow does).
  bool commit_results = true;
  /// Training length when the config does not specify iterations and the
  /// query has no keep(..., iterations) clause.
  int64_t default_iterations = 60;
  int64_t default_batch_size = 16;
  uint64_t seed = 1;
};

/// One trained candidate from an evaluate query.
struct EvaluatedModel {
  std::string name;  ///< Committed version name (or candidate id).
  std::string source;  ///< The version / network it derived from.
  std::map<std::string, std::string> config;
  double loss = 0.0;
  double accuracy = 0.0;
};

/// Execution statistics for one operator of an analyzed query
/// (`explain analyze ...`).
struct DqlOpStats {
  std::string op;      ///< Operator name ("scan", "filter", "train", ...).
  std::string detail;  ///< Operator argument, if any.
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  double ms = 0.0;  ///< Wall time inside the operator.
  int depth = 0;    ///< Nesting depth (subqueries indent).
};

/// The result of running one DQL statement.
struct DqlResult {
  dql::Query::Kind kind = dql::Query::Kind::kSelect;
  /// select: matching version names.
  std::vector<std::string> model_names;
  /// slice / construct: derived network definitions (also committed when
  /// DqlOptions.commit_results is set).
  std::vector<NetworkDef> networks;
  /// evaluate: the kept models, best first.
  std::vector<EvaluatedModel> evaluated;

  /// `explain analyze`: true, and `plan` holds one entry per executed
  /// operator in execution order.
  bool analyzed = false;
  std::vector<DqlOpStats> plan;

  /// Renders `plan` as an indented one-operator-per-line text block.
  std::string RenderPlan() const;
};

/// Executes DQL queries against a DLV repository ("dlv query ..."). The
/// engine owns no state beyond configuration; datasets for evaluate
/// queries are registered by name ("default" is used when the query does
/// not vary config.input_data).
class DqlEngine {
 public:
  DqlEngine(Repository* repo, DqlOptions options = {})
      : repo_(repo), options_(options) {}

  /// Registers a dataset usable via `vary config.input_data in ["name"]`.
  /// The first registered dataset (or one named "default") is the default.
  void RegisterDataset(const std::string& name, const Dataset* dataset);

  /// Parses and executes one statement.
  Result<DqlResult> Run(const std::string& query_text);

  /// Executes a parsed statement.
  Result<DqlResult> Execute(const dql::Query& query);

 private:
  struct Candidate {
    NetworkDef def;
    std::string source;  ///< Version name it derived from ("" if fresh).
  };

  Result<std::vector<std::string>> MatchingVersions(
      const dql::Condition& condition) const;
  Result<bool> Matches(const std::string& version_name,
                       const dql::Condition& condition) const;
  Result<bool> MatchesPredicate(const std::string& version_name,
                                const dql::Predicate& predicate) const;

  Result<DqlResult> ExecuteSelect(const dql::SelectQuery& query) const;
  Result<DqlResult> ExecuteSlice(const dql::SliceQuery& query);
  Result<DqlResult> ExecuteConstruct(const dql::ConstructQuery& query);
  Result<DqlResult> ExecuteEvaluate(const dql::EvaluateQuery& query);

  Result<std::vector<Candidate>> EvaluateCandidates(
      const dql::EvaluateQuery& query);

  Status MaybeCommitNetwork(const NetworkDef& def, const std::string& parent,
                            const std::string& message);

  /// Opens an operator frame in the collected plan and returns its index.
  /// Every executed operator is recorded (and mirrored to the `dql.op.*`
  /// metrics); the plan is only attached to the result for analyzed queries.
  size_t BeginOp(const char* op, std::string detail) const;
  /// Closes the frame opened by BeginOp: stamps wall time and row counts.
  void EndOp(size_t index, uint64_t rows_in, uint64_t rows_out) const;

  Repository* repo_;
  DqlOptions options_;
  std::map<std::string, const Dataset*> datasets_;

  /// Plan collection for the statement currently executing. `in_execute_`
  /// marks re-entrant Execute calls (evaluate subqueries) so nested
  /// operators land in the same plan at a deeper level.
  mutable bool in_execute_ = false;
  mutable int op_depth_ = 0;
  mutable std::vector<DqlOpStats> plan_;
  mutable std::vector<double> op_start_ms_;
};

/// SQL LIKE matching ('%' = any run, '_' = any single char).
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace modelhub

#endif  // MODELHUB_DQL_ENGINE_H_
