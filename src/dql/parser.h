#ifndef MODELHUB_DQL_PARSER_H_
#define MODELHUB_DQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "dql/ast.h"

namespace modelhub {
namespace dql {

/// Parses one DQL statement (select / slice / construct / evaluate).
/// Errors carry the byte offset of the offending token.
Result<Query> Parse(const std::string& text);

}  // namespace dql
}  // namespace modelhub

#endif  // MODELHUB_DQL_PARSER_H_
