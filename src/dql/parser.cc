#include "dql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "common/macros.h"
#include "dql/lexer.h"

namespace modelhub {
namespace dql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query query;
    if (AcceptKeyword("explain")) {
      if (!AcceptKeyword("analyze")) {
        return Error("explain must be followed by analyze");
      }
      query.analyze = true;
    }
    if (AcceptKeyword("select")) {
      query.kind = Query::Kind::kSelect;
      MH_ASSIGN_OR_RETURN(query.select, ParseSelect());
    } else if (AcceptKeyword("slice")) {
      query.kind = Query::Kind::kSlice;
      MH_ASSIGN_OR_RETURN(query.slice, ParseSlice());
    } else if (AcceptKeyword("construct")) {
      query.kind = Query::Kind::kConstruct;
      MH_ASSIGN_OR_RETURN(query.construct, ParseConstruct());
    } else if (AcceptKeyword("evaluate")) {
      query.kind = Query::Kind::kEvaluate;
      MH_ASSIGN_OR_RETURN(query.evaluate, ParseEvaluate());
    } else {
      return Error("expected select, slice, construct or evaluate");
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(std::string_view keyword) {
    if (Peek().IsKeyword(keyword)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptSymbol(std::string_view symbol) {
    if (Peek().Is(TokenType::kSymbol, symbol)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        "DQL parse error at offset " + std::to_string(Peek().position) +
        " (near '" + Peek().text + "'): " + message);
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!AcceptSymbol(symbol)) {
      return Error("expected '" + std::string(symbol) + "'");
    }
    return Status::OK();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!AcceptKeyword(keyword)) {
      return Error("expected '" + std::string(keyword) + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) return Error("expected identifier");
    return Next().text;
  }

  Result<std::string> ExpectString() {
    if (Peek().type != TokenType::kString) {
      return Error("expected string literal");
    }
    return Next().text;
  }

  // ------------------------------------------------------------ queries

  Result<SelectQuery> ParseSelect() {
    SelectQuery select;
    MH_ASSIGN_OR_RETURN(select.var, ExpectIdent());
    MH_RETURN_IF_ERROR(ExpectKeyword("where"));
    MH_ASSIGN_OR_RETURN(select.where, ParseOr(select.var));
    return select;
  }

  Result<SliceQuery> ParseSlice() {
    SliceQuery slice;
    MH_ASSIGN_OR_RETURN(slice.new_var, ExpectIdent());
    MH_RETURN_IF_ERROR(ExpectKeyword("from"));
    MH_ASSIGN_OR_RETURN(slice.src_var, ExpectIdent());
    if (AcceptKeyword("where")) {
      MH_ASSIGN_OR_RETURN(slice.where, ParseOr(slice.src_var));
    }
    MH_RETURN_IF_ERROR(ExpectKeyword("mutate"));
    // <new>.input = <src>["sel"] and <new>.output = <src>["sel"]
    for (int i = 0; i < 2; ++i) {
      MH_ASSIGN_OR_RETURN(const std::string var, ExpectIdent());
      if (var != slice.new_var) {
        return Error("slice mutate must assign to " + slice.new_var);
      }
      MH_RETURN_IF_ERROR(ExpectSymbol("."));
      MH_ASSIGN_OR_RETURN(const std::string port, ExpectIdent());
      MH_RETURN_IF_ERROR(ExpectSymbol("="));
      MH_ASSIGN_OR_RETURN(const std::string src, ExpectIdent());
      if (src != slice.src_var) {
        return Error("slice selector must reference " + slice.src_var);
      }
      MH_RETURN_IF_ERROR(ExpectSymbol("["));
      MH_ASSIGN_OR_RETURN(const std::string selector, ExpectString());
      MH_RETURN_IF_ERROR(ExpectSymbol("]"));
      if (port == "input") {
        slice.input_selector = selector;
      } else if (port == "output") {
        slice.output_selector = selector;
      } else {
        return Error("slice mutate expects .input or .output");
      }
      if (i == 0) MH_RETURN_IF_ERROR(ExpectKeyword("and"));
    }
    if (slice.input_selector.empty() || slice.output_selector.empty()) {
      return Error("slice needs both input and output assignments");
    }
    return slice;
  }

  Result<ConstructQuery> ParseConstruct() {
    ConstructQuery construct;
    MH_ASSIGN_OR_RETURN(construct.new_var, ExpectIdent());
    MH_RETURN_IF_ERROR(ExpectKeyword("from"));
    MH_ASSIGN_OR_RETURN(construct.src_var, ExpectIdent());
    if (AcceptKeyword("where")) {
      MH_ASSIGN_OR_RETURN(construct.where, ParseOr(construct.src_var));
    }
    MH_RETURN_IF_ERROR(ExpectKeyword("mutate"));
    do {
      ConstructQuery::Mutation mutation;
      MH_ASSIGN_OR_RETURN(const std::string var, ExpectIdent());
      if (var != construct.src_var && var != construct.new_var) {
        return Error("mutation must reference " + construct.src_var);
      }
      MH_RETURN_IF_ERROR(ExpectSymbol("["));
      MH_ASSIGN_OR_RETURN(mutation.selector, ExpectString());
      MH_RETURN_IF_ERROR(ExpectSymbol("]"));
      MH_RETURN_IF_ERROR(ExpectSymbol("."));
      MH_ASSIGN_OR_RETURN(const std::string op, ExpectIdent());
      if (op == "insert") {
        mutation.is_insert = true;
        MH_RETURN_IF_ERROR(ExpectSymbol("="));
        MH_ASSIGN_OR_RETURN(mutation.template_name, ExpectIdent());
        MH_RETURN_IF_ERROR(ExpectSymbol("("));
        if (Peek().type == TokenType::kString) {
          mutation.new_name = Next().text;
          if (AcceptSymbol(",")) {
            MH_ASSIGN_OR_RETURN(mutation.template_arg, ExpectString());
          }
        }
        MH_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (mutation.new_name.empty()) {
          return Error("insert template needs a node name argument");
        }
      } else if (op == "delete") {
        mutation.is_insert = false;
      } else {
        return Error("mutation must be .insert or .delete");
      }
      construct.mutations.push_back(std::move(mutation));
    } while (AcceptKeyword("and"));
    return construct;
  }

  Result<EvaluateQuery> ParseEvaluate() {
    EvaluateQuery evaluate;
    MH_ASSIGN_OR_RETURN(evaluate.var, ExpectIdent());
    MH_RETURN_IF_ERROR(ExpectKeyword("from"));
    if (AcceptSymbol("(")) {
      Query sub;
      if (AcceptKeyword("select")) {
        sub.kind = Query::Kind::kSelect;
        MH_ASSIGN_OR_RETURN(sub.select, ParseSelect());
      } else if (AcceptKeyword("slice")) {
        sub.kind = Query::Kind::kSlice;
        MH_ASSIGN_OR_RETURN(sub.slice, ParseSlice());
      } else if (AcceptKeyword("construct")) {
        sub.kind = Query::Kind::kConstruct;
        MH_ASSIGN_OR_RETURN(sub.construct, ParseConstruct());
      } else {
        return Error("nested query must be select, slice or construct");
      }
      MH_RETURN_IF_ERROR(ExpectSymbol(")"));
      evaluate.subquery = std::make_shared<Query>(std::move(sub));
    } else {
      MH_ASSIGN_OR_RETURN(evaluate.from_pattern, ExpectString());
    }
    MH_RETURN_IF_ERROR(ExpectKeyword("with"));
    MH_RETURN_IF_ERROR(ExpectKeyword("config"));
    MH_RETURN_IF_ERROR(ExpectSymbol("="));
    if (Peek().type == TokenType::kString) {
      evaluate.config = Next().text;
    } else {
      MH_ASSIGN_OR_RETURN(evaluate.config, ExpectIdent());
    }
    if (AcceptKeyword("vary")) {
      do {
        EvaluateQuery::VaryDim dim;
        MH_RETURN_IF_ERROR(ExpectKeyword("config"));
        MH_RETURN_IF_ERROR(ExpectSymbol("."));
        MH_ASSIGN_OR_RETURN(dim.param, ExpectIdent());
        if (AcceptKeyword("auto")) {
          dim.is_auto = true;
        } else {
          MH_RETURN_IF_ERROR(ExpectKeyword("in"));
          MH_RETURN_IF_ERROR(ExpectSymbol("["));
          do {
            if (Peek().type == TokenType::kNumber ||
                Peek().type == TokenType::kString) {
              dim.values.push_back(Next().text);
            } else {
              return Error("vary list expects numbers or strings");
            }
          } while (AcceptSymbol(","));
          MH_RETURN_IF_ERROR(ExpectSymbol("]"));
        }
        evaluate.vary.push_back(std::move(dim));
      } while (AcceptKeyword("and"));
    }
    if (AcceptKeyword("keep")) {
      EvaluateQuery::KeepRule keep;
      MH_RETURN_IF_ERROR(ExpectKeyword("top"));
      MH_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().type != TokenType::kNumber) return Error("keep expects k");
      {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(Next().text.c_str(), &end, 10);
        if (errno == ERANGE || v <= 0 || v > 1'000'000) {
          return Error("keep expects a small positive k");
        }
        keep.top_k = static_cast<int>(v);
      }
      MH_RETURN_IF_ERROR(ExpectSymbol(","));
      // Metric: m["loss"] or a bare string/ident.
      if (Peek().type == TokenType::kIdent) {
        ++pos_;  // Model variable name.
        MH_RETURN_IF_ERROR(ExpectSymbol("["));
        MH_ASSIGN_OR_RETURN(keep.metric, ExpectString());
        MH_RETURN_IF_ERROR(ExpectSymbol("]"));
      } else {
        MH_ASSIGN_OR_RETURN(keep.metric, ExpectString());
      }
      MH_RETURN_IF_ERROR(ExpectSymbol(","));
      if (Peek().type != TokenType::kNumber) {
        return Error("keep expects an iteration count");
      }
      {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(Next().text.c_str(), &end, 10);
        if (errno == ERANGE || v < 0) {
          return Error("keep expects a non-negative iteration count");
        }
        keep.iterations = v;
      }
      MH_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (keep.metric != "loss" && keep.metric != "accuracy") {
        return Error("keep metric must be \"loss\" or \"accuracy\"");
      }
      evaluate.keep = keep;
    }
    return evaluate;
  }

  // --------------------------------------------------------- conditions

  /// OR-level: atom ("or" atom)*; result in DNF.
  Result<Condition> ParseOr(const std::string& var) {
    MH_ASSIGN_OR_RETURN(Condition left, ParseAnd(var));
    while (AcceptKeyword("or")) {
      MH_ASSIGN_OR_RETURN(Condition right, ParseAnd(var));
      for (auto& disjunct : right.disjuncts) {
        left.disjuncts.push_back(std::move(disjunct));
      }
    }
    return left;
  }

  /// AND-level: distributes over nested ORs to stay in DNF.
  Result<Condition> ParseAnd(const std::string& var) {
    MH_ASSIGN_OR_RETURN(Condition acc, ParseAtom(var));
    while (AcceptKeyword("and")) {
      MH_ASSIGN_OR_RETURN(Condition next, ParseAtom(var));
      Condition product;
      for (const auto& a : acc.disjuncts) {
        for (const auto& b : next.disjuncts) {
          std::vector<Predicate> merged = a;
          merged.insert(merged.end(), b.begin(), b.end());
          product.disjuncts.push_back(std::move(merged));
        }
      }
      acc = std::move(product);
    }
    return acc;
  }

  Result<Condition> ParseAtom(const std::string& var) {
    if (AcceptSymbol("(")) {
      MH_ASSIGN_OR_RETURN(Condition inner, ParseOr(var));
      MH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    // `not` applies to a single predicate (negating a parenthesized OR
    // would require De Morgan expansion; write the query in DNF instead).
    const bool negated = AcceptKeyword("not");
    MH_ASSIGN_OR_RETURN(Predicate predicate, ParsePredicate(var));
    predicate.negated = negated;
    Condition condition;
    condition.disjuncts.push_back({std::move(predicate)});
    return condition;
  }

  Result<Predicate> ParsePredicate(const std::string& var) {
    MH_ASSIGN_OR_RETURN(const std::string head, ExpectIdent());
    if (head != var) {
      return Error("predicate must reference " + var);
    }
    Predicate predicate;
    if (AcceptSymbol("[")) {
      // Selector traversal: var["sel"].next has TEMPLATE("ARG").
      predicate.kind = Predicate::Kind::kSelectorHas;
      MH_ASSIGN_OR_RETURN(predicate.selector, ExpectString());
      MH_RETURN_IF_ERROR(ExpectSymbol("]"));
      MH_RETURN_IF_ERROR(ExpectSymbol("."));
      MH_ASSIGN_OR_RETURN(const std::string direction, ExpectIdent());
      if (direction == "next") {
        predicate.direction_next = true;
      } else if (direction == "prev") {
        predicate.direction_next = false;
      } else {
        return Error("expected .next or .prev");
      }
      MH_RETURN_IF_ERROR(ExpectKeyword("has"));
      MH_ASSIGN_OR_RETURN(predicate.template_name, ExpectIdent());
      MH_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().type == TokenType::kString) {
        predicate.template_arg = Next().text;
      }
      MH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return predicate;
    }
    MH_RETURN_IF_ERROR(ExpectSymbol("."));
    MH_ASSIGN_OR_RETURN(predicate.attribute, ExpectIdent());
    if (AcceptKeyword("like")) {
      predicate.kind = Predicate::Kind::kLike;
      MH_ASSIGN_OR_RETURN(predicate.literal, ExpectString());
      return predicate;
    }
    predicate.kind = Predicate::Kind::kCompare;
    if (AcceptSymbol("=")) {
      predicate.op = CompareOp::kEq;
    } else if (AcceptSymbol("!=")) {
      predicate.op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      predicate.op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      predicate.op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      predicate.op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      predicate.op = CompareOp::kGt;
    } else {
      return Error("expected comparison operator");
    }
    if (Peek().type == TokenType::kNumber) {
      predicate.literal = Next().text;
      predicate.literal_is_number = true;
    } else if (Peek().type == TokenType::kString) {
      predicate.literal = Next().text;
    } else {
      return Error("expected literal");
    }
    return predicate;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(const std::string& text) {
  MH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace dql
}  // namespace modelhub
