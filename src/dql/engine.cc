#include "dql/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dql/parser.h"
#include "nn/network.h"
#include "nn/trainer.h"

namespace modelhub {

namespace {

using dql::CompareOp;
using dql::Condition;
using dql::ConstructQuery;
using dql::EvaluateQuery;
using dql::Predicate;
using dql::Query;
using dql::SelectQuery;
using dql::SliceQuery;

/// Built-in node templates for `has` conditions and insert mutations
/// (POOL("MAX"), RELU("name"), ...). Returns the kind, or an error for
/// unknown template names.
Result<LayerKind> TemplateKind(const std::string& name) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "POOL") return LayerKind::kPool;
  if (upper == "CONV") return LayerKind::kConv;
  if (upper == "FULL" || upper == "IP" || upper == "FC") {
    return LayerKind::kFull;
  }
  if (upper == "RELU") return LayerKind::kReLU;
  if (upper == "SIGMOID") return LayerKind::kSigmoid;
  if (upper == "TANH") return LayerKind::kTanh;
  if (upper == "SOFTMAX") return LayerKind::kSoftmax;
  if (upper == "DROPOUT") return LayerKind::kDropout;
  if (upper == "LRN") return LayerKind::kLRN;
  if (upper == "FLATTEN") return LayerKind::kFlatten;
  if (upper == "ADD" || upper == "ELTWISE") return LayerKind::kEltwiseAdd;
  return Status::InvalidArgument("unknown node template: " + name);
}

/// Does `node` match template `name(arg)`? The only argued template is
/// POOL("MAX"/"AVG"); other arguments are ignored for matching.
Result<bool> NodeMatchesTemplate(const LayerDef& node,
                                 const std::string& template_name,
                                 const std::string& arg) {
  MH_ASSIGN_OR_RETURN(const LayerKind kind, TemplateKind(template_name));
  if (node.kind != kind) return false;
  if (kind == LayerKind::kPool && !arg.empty()) {
    const PoolMode want =
        (arg == "AVG" || arg == "avg") ? PoolMode::kAvg : PoolMode::kMax;
    return node.pool_mode == want;
  }
  return true;
}

double ParseNumber(const std::string& text, bool* ok) {
  try {
    size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    *ok = consumed == text.size();
    return v;
  } catch (...) {
    *ok = false;
    return 0.0;
  }
}

bool CompareDoubles(double a, CompareOp op, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareStrings(const std::string& a, CompareOp op, const std::string& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

/// Applies one config parameter to TrainOptions. Returns false for
/// parameters the grid handles elsewhere (input_data).
Result<bool> ApplyConfigParam(TrainOptions* options, const std::string& key,
                              const std::string& value) {
  bool ok = false;
  const double v = ParseNumber(value, &ok);
  if (key == "input_data") return false;
  if (!ok) {
    return Status::InvalidArgument("config." + key +
                                   " expects a number, got " + value);
  }
  if (key == "base_lr") {
    options->base_learning_rate = static_cast<float>(v);
  } else if (key == "momentum") {
    options->momentum = static_cast<float>(v);
  } else if (key == "batch_size") {
    options->batch_size = static_cast<int64_t>(v);
  } else if (key == "iterations") {
    options->iterations = static_cast<int64_t>(v);
  } else if (key == "weight_decay") {
    options->weight_decay = static_cast<float>(v);
  } else {
    return Status::InvalidArgument("unknown config parameter: " + key);
  }
  return true;
}

/// Default grids for `auto` (currently grid search, as in the paper).
std::vector<std::string> AutoGrid(const std::string& param) {
  if (param == "base_lr") return {"0.1", "0.01", "0.001"};
  if (param == "momentum") return {"0.8", "0.9"};
  if (param == "batch_size") return {"16", "32"};
  if (param == "weight_decay") return {"0", "0.0005"};
  return {};
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string DqlResult::RenderPlan() const {
  std::ostringstream out;
  for (const DqlOpStats& op : plan) {
    out << std::string(static_cast<size_t>(op.depth) * 2, ' ') << op.op;
    if (!op.detail.empty()) out << " " << op.detail;
    char timing[32];
    std::snprintf(timing, sizeof(timing), "%.3f", op.ms);
    out << "  (rows_in=" << op.rows_in << " rows_out=" << op.rows_out
        << " time=" << timing << " ms)\n";
  }
  return out.str();
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer LIKE matcher with backtracking on '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

void DqlEngine::RegisterDataset(const std::string& name,
                                const Dataset* dataset) {
  datasets_[name] = dataset;
}

Result<DqlResult> DqlEngine::Run(const std::string& query_text) {
  MH_ASSIGN_OR_RETURN(Query query, dql::Parse(query_text));
  return Execute(query);
}

size_t DqlEngine::BeginOp(const char* op, std::string detail) const {
  DqlOpStats stats;
  stats.op = op;
  stats.detail = std::move(detail);
  stats.depth = op_depth_;
  ++op_depth_;
  plan_.push_back(std::move(stats));
  op_start_ms_.push_back(NowMs());
  return plan_.size() - 1;
}

void DqlEngine::EndOp(size_t index, uint64_t rows_in,
                      uint64_t rows_out) const {
  DqlOpStats& stats = plan_[index];
  stats.rows_in = rows_in;
  stats.rows_out = rows_out;
  stats.ms = NowMs() - op_start_ms_[index];
  if (op_depth_ > stats.depth) op_depth_ = stats.depth;
  MetricRegistry* registry = MetricRegistry::Global();
  registry->GetCounter("dql.op." + stats.op + ".count")->Increment();
  registry->GetCounter("dql.op." + stats.op + ".rows")->Add(rows_out);
  registry->GetHistogram("dql.op." + stats.op + ".us")
      ->Record(static_cast<uint64_t>(stats.ms * 1000.0));
}

Result<DqlResult> DqlEngine::Execute(const Query& query) {
  // The outermost Execute of a statement owns the collected plan; nested
  // calls (evaluate subqueries) append to it at a deeper level.
  const bool outer = !in_execute_;
  std::optional<TraceSpan> span;
  if (outer) {
    in_execute_ = true;
    op_depth_ = 0;
    plan_.clear();
    op_start_ms_.clear();
    span.emplace("dql.query");
  }
  auto result = [&]() -> Result<DqlResult> {
    switch (query.kind) {
      case Query::Kind::kSelect:
        return ExecuteSelect(query.select);
      case Query::Kind::kSlice:
        return ExecuteSlice(query.slice);
      case Query::Kind::kConstruct:
        return ExecuteConstruct(query.construct);
      case Query::Kind::kEvaluate:
        return ExecuteEvaluate(query.evaluate);
    }
    return Status::InvalidArgument("unknown query kind");
  }();
  if (outer) {
    in_execute_ = false;
    MH_COUNTER("dql.query.count")->Increment();
    if (!result.ok()) MH_COUNTER("dql.query.errors")->Increment();
    span->Annotate("ops", static_cast<uint64_t>(plan_.size()));
    if (result.ok() && query.analyze) {
      result->analyzed = true;
      result->plan = plan_;
    }
  }
  return result;
}

Result<bool> DqlEngine::MatchesPredicate(const std::string& version_name,
                                         const Predicate& predicate) const {
  if (predicate.kind == Predicate::Kind::kSelectorHas) {
    MH_ASSIGN_OR_RETURN(NetworkDef def, repo_->GetNetwork(version_name));
    MH_ASSIGN_OR_RETURN(std::vector<std::string> nodes,
                        def.Select(predicate.selector));
    for (const std::string& node : nodes) {
      const std::vector<std::string> neighbors = predicate.direction_next
                                                     ? def.Next(node)
                                                     : def.Prev(node);
      for (const std::string& neighbor : neighbors) {
        MH_ASSIGN_OR_RETURN(LayerDef neighbor_def, def.GetNode(neighbor));
        MH_ASSIGN_OR_RETURN(
            const bool matches,
            NodeMatchesTemplate(neighbor_def, predicate.template_name,
                                predicate.template_arg));
        if (matches) return true;
      }
    }
    return false;
  }

  MH_ASSIGN_OR_RETURN(ModelVersionInfo info, repo_->GetInfo(version_name));
  if (predicate.kind == Predicate::Kind::kLike) {
    std::string value;
    if (predicate.attribute == "name") {
      value = info.name;
    } else if (predicate.attribute == "parent") {
      value = info.parent;
    } else {
      return Status::InvalidArgument("LIKE expects a text attribute, got " +
                                     predicate.attribute);
    }
    return LikeMatch(value, predicate.literal);
  }

  // Comparison. Numeric attributes compare numerically; text attributes
  // lexicographically.
  double numeric_value = 0.0;
  std::string text_value;
  bool is_numeric = true;
  if (predicate.attribute == "creation_time") {
    numeric_value = static_cast<double>(info.created_at);
  } else if (predicate.attribute == "num_snapshots") {
    numeric_value = static_cast<double>(info.num_snapshots);
  } else if (predicate.attribute == "accuracy") {
    numeric_value = info.best_accuracy;
  } else if (predicate.attribute == "loss") {
    MH_ASSIGN_OR_RETURN(auto log, repo_->GetLog(version_name));
    numeric_value = log.empty() ? 1e30 : log.back().loss;
  } else if (predicate.attribute == "name") {
    text_value = info.name;
    is_numeric = false;
  } else if (predicate.attribute == "parent") {
    text_value = info.parent;
    is_numeric = false;
  } else {
    return Status::InvalidArgument("unknown attribute: " +
                                   predicate.attribute);
  }
  if (is_numeric) {
    bool ok = false;
    const double literal = ParseNumber(predicate.literal, &ok);
    if (!ok) {
      // Fall back to lexicographic comparison on the printed value, which
      // covers date-like strings against logical clocks.
      return CompareStrings(std::to_string(numeric_value), predicate.op,
                            predicate.literal);
    }
    return CompareDoubles(numeric_value, predicate.op, literal);
  }
  return CompareStrings(text_value, predicate.op, predicate.literal);
}

Result<bool> DqlEngine::Matches(const std::string& version_name,
                                const Condition& condition) const {
  if (condition.empty()) return true;
  for (const auto& conjunction : condition.disjuncts) {
    bool all = true;
    for (const Predicate& predicate : conjunction) {
      MH_ASSIGN_OR_RETURN(bool matches,
                          MatchesPredicate(version_name, predicate));
      if (predicate.negated) matches = !matches;
      if (!matches) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Result<std::vector<std::string>> DqlEngine::MatchingVersions(
    const Condition& condition) const {
  const size_t scan = BeginOp("scan", "versions");
  MH_ASSIGN_OR_RETURN(auto versions, repo_->List());
  EndOp(scan, 0, versions.size());
  const size_t filter = BeginOp("filter", "where");
  std::vector<std::string> out;
  for (const auto& info : versions) {
    MH_ASSIGN_OR_RETURN(const bool matches, Matches(info.name, condition));
    if (matches) out.push_back(info.name);
  }
  EndOp(filter, versions.size(), out.size());
  return out;
}

Result<DqlResult> DqlEngine::ExecuteSelect(const SelectQuery& query) const {
  DqlResult result;
  result.kind = Query::Kind::kSelect;
  const size_t op = BeginOp("select", "");
  MH_ASSIGN_OR_RETURN(result.model_names, MatchingVersions(query.where));
  EndOp(op, 0, result.model_names.size());
  return result;
}

Status DqlEngine::MaybeCommitNetwork(const NetworkDef& def,
                                     const std::string& parent,
                                     const std::string& message) {
  if (!options_.commit_results) return Status::OK();
  CommitRequest request;
  request.name = def.name();
  request.network = def;
  request.parent = parent;
  request.message = message;
  return repo_->Commit(request).status();
}

Result<DqlResult> DqlEngine::ExecuteSlice(const SliceQuery& query) {
  DqlResult result;
  result.kind = Query::Kind::kSlice;
  const size_t op = BeginOp("slice", query.new_var);
  MH_ASSIGN_OR_RETURN(auto sources, MatchingVersions(query.where));
  for (const std::string& source : sources) {
    MH_ASSIGN_OR_RETURN(NetworkDef def, repo_->GetNetwork(source));
    MH_ASSIGN_OR_RETURN(auto starts, def.Select(query.input_selector));
    MH_ASSIGN_OR_RETURN(auto ends, def.Select(query.output_selector));
    if (starts.empty() || ends.empty()) continue;
    auto sliced = def.Slice(starts.front(), ends.front());
    if (!sliced.ok()) continue;  // No path in this model: not a candidate.
    sliced->set_name(query.new_var + "_" + source);
    MH_RETURN_IF_ERROR(MaybeCommitNetwork(
        *sliced, source, "slice " + starts.front() + ".." + ends.front()));
    result.networks.push_back(std::move(*sliced));
  }
  EndOp(op, sources.size(), result.networks.size());
  return result;
}

Result<DqlResult> DqlEngine::ExecuteConstruct(const ConstructQuery& query) {
  DqlResult result;
  result.kind = Query::Kind::kConstruct;
  const size_t op = BeginOp("construct", query.new_var);
  MH_ASSIGN_OR_RETURN(auto sources, MatchingVersions(query.where));
  for (const std::string& source : sources) {
    MH_ASSIGN_OR_RETURN(NetworkDef def, repo_->GetNetwork(source));
    bool applied_all = true;
    for (const auto& mutation : query.mutations) {
      MH_ASSIGN_OR_RETURN(auto nodes, def.Select(mutation.selector));
      if (nodes.empty()) {
        applied_all = false;
        break;
      }
      for (const std::string& node : nodes) {
        if (mutation.is_insert) {
          // '$' in the new name expands to the matched node's name.
          std::string new_name;
          for (char c : mutation.new_name) {
            if (c == '$') {
              new_name += node;
            } else {
              new_name.push_back(c);
            }
          }
          MH_ASSIGN_OR_RETURN(const LayerKind kind,
                              TemplateKind(mutation.template_name));
          LayerDef layer;
          if (kind == LayerKind::kPool) {
            layer = MakePool(new_name,
                             mutation.template_arg == "AVG" ? PoolMode::kAvg
                                                            : PoolMode::kMax,
                             2, 2);
          } else if (kind == LayerKind::kDropout) {
            layer = MakeDropout(new_name, 0.5f);
          } else if (kind == LayerKind::kLRN) {
            layer = MakeLRN(new_name);
          } else if (kind == LayerKind::kConv || kind == LayerKind::kFull) {
            return Status::InvalidArgument(
                "insert of parametric layers requires explicit "
                "hyperparameters; use the C++ API");
          } else {
            layer = MakeActivation(new_name, kind);
          }
          MH_RETURN_IF_ERROR(def.InsertAfter(node, layer));
        } else {
          MH_RETURN_IF_ERROR(def.DeleteNode(node));
        }
      }
    }
    if (!applied_all) continue;
    def.set_name(query.new_var + "_" + source);
    MH_RETURN_IF_ERROR(
        MaybeCommitNetwork(def, source, "construct from " + source));
    result.networks.push_back(std::move(def));
  }
  EndOp(op, sources.size(), result.networks.size());
  return result;
}

Result<std::vector<DqlEngine::Candidate>> DqlEngine::EvaluateCandidates(
    const EvaluateQuery& query) {
  std::vector<Candidate> candidates;
  if (query.subquery != nullptr) {
    // Nested queries must not commit intermediate results twice; run them
    // with commit disabled, candidates are committed after evaluation.
    const bool saved = options_.commit_results;
    options_.commit_results = false;
    auto sub = Execute(*query.subquery);
    options_.commit_results = saved;
    MH_RETURN_IF_ERROR(sub.status());
    if (sub->kind == Query::Kind::kSelect) {
      for (const auto& name : sub->model_names) {
        MH_ASSIGN_OR_RETURN(NetworkDef def, repo_->GetNetwork(name));
        candidates.push_back({std::move(def), name});
      }
    } else {
      for (auto& def : sub->networks) {
        // Derived nets record their source version in the name suffix.
        candidates.push_back({def, ""});
      }
    }
  } else {
    MH_ASSIGN_OR_RETURN(auto versions, repo_->List());
    for (const auto& info : versions) {
      if (LikeMatch(info.name, query.from_pattern)) {
        MH_ASSIGN_OR_RETURN(NetworkDef def, repo_->GetNetwork(info.name));
        candidates.push_back({std::move(def), info.name});
      }
    }
  }
  return candidates;
}

Result<DqlResult> DqlEngine::ExecuteEvaluate(const EvaluateQuery& query) {
  DqlResult result;
  result.kind = Query::Kind::kEvaluate;
  const size_t op = BeginOp("evaluate", query.var);
  const size_t cand_op = BeginOp(
      "candidates", query.subquery != nullptr ? "subquery" : query.from_pattern);
  MH_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                      EvaluateCandidates(query));
  EndOp(cand_op, 0, candidates.size());
  if (candidates.empty()) {
    EndOp(op, 0, 0);
    return result;
  }

  // Base config.
  TrainOptions base;
  base.iterations = options_.default_iterations;
  base.batch_size = options_.default_batch_size;
  if (query.config != "default") {
    MH_ASSIGN_OR_RETURN(auto hyperparams, repo_->GetHyperparams(query.config));
    for (const auto& [key, value] : hyperparams) {
      MH_RETURN_IF_ERROR(ApplyConfigParam(&base, key, value).status());
    }
  }
  if (query.keep.has_value() && query.keep->iterations > 0) {
    base.iterations = query.keep->iterations;
  }

  // Expand the vary grid.
  const size_t grid_op = BeginOp("grid", "vary");
  struct GridDim {
    std::string param;
    std::vector<std::string> values;
  };
  std::vector<GridDim> dims;
  for (const auto& vary : query.vary) {
    GridDim dim;
    dim.param = vary.param;
    dim.values = vary.is_auto ? AutoGrid(vary.param) : vary.values;
    if (dim.values.empty()) {
      return Status::InvalidArgument("vary config." + vary.param +
                                     " has no values");
    }
    dims.push_back(std::move(dim));
  }
  std::vector<std::map<std::string, std::string>> grid = {{}};
  for (const auto& dim : dims) {
    std::vector<std::map<std::string, std::string>> expanded;
    for (const auto& cell : grid) {
      for (const auto& value : dim.values) {
        auto next = cell;
        next[dim.param] = value;
        expanded.push_back(std::move(next));
      }
    }
    grid = std::move(expanded);
  }
  EndOp(grid_op, dims.size(), grid.size());

  // Resolve the default dataset.
  const Dataset* default_dataset = nullptr;
  if (auto it = datasets_.find("default"); it != datasets_.end()) {
    default_dataset = it->second;
  } else if (!datasets_.empty()) {
    default_dataset = datasets_.begin()->second;
  }

  // Train every candidate x cell.
  const size_t train_op = BeginOp("train", "");
  std::vector<std::pair<EvaluatedModel, CommitRequest>> evaluated;
  Rng rng(options_.seed);
  for (const auto& candidate : candidates) {
    for (const auto& cell : grid) {
      TrainOptions cell_options = base;
      const Dataset* dataset = default_dataset;
      for (const auto& [key, value] : cell) {
        if (key == "input_data") {
          auto it = datasets_.find(value);
          if (it == datasets_.end()) {
            return Status::NotFound("no registered dataset: " + value);
          }
          dataset = it->second;
          continue;
        }
        MH_RETURN_IF_ERROR(
            ApplyConfigParam(&cell_options, key, value).status());
      }
      if (dataset == nullptr) {
        return Status::FailedPrecondition(
            "evaluate requires a registered dataset");
      }
      cell_options.snapshot_every = 0;  // Only the final snapshot.
      cell_options.log_every = cell_options.iterations;
      cell_options.seed = rng.Next();

      MH_ASSIGN_OR_RETURN(Network net, Network::Create(candidate.def));
      Rng init_rng(cell_options.seed);
      net.InitializeWeights(&init_rng);
      MH_ASSIGN_OR_RETURN(TrainResult trained,
                          TrainNetwork(&net, *dataset, cell_options));

      EvaluatedModel model;
      model.source =
          candidate.source.empty() ? candidate.def.name() : candidate.source;
      model.config = cell;
      model.loss = trained.final_loss;
      model.accuracy = trained.final_accuracy;
      model.name = query.var + std::to_string(evaluated.size()) + "_" +
                   candidate.def.name();

      // Keep the trained artifacts so the keepers (and only the keepers)
      // can be committed after the keep rule prunes the rest — the early
      // elimination the paper's keep operator exists for.
      CommitRequest request;
      request.name = model.name;
      NetworkDef named = candidate.def;
      named.set_name(request.name);
      request.network = named;
      request.snapshots = trained.snapshots;
      request.log = trained.log;
      for (const auto& [key, value] : cell) {
        request.hyperparams[key] = value;
      }
      request.parent = candidate.source;
      request.message = "dql evaluate";
      evaluated.emplace_back(std::move(model), std::move(request));
    }
  }
  EndOp(train_op, candidates.size() * grid.size(), evaluated.size());

  // Apply the keep rule: sort and truncate, then commit survivors.
  const size_t keep_op =
      BeginOp("keep", query.keep.has_value() ? query.keep->metric : "all");
  const uint64_t keep_in = evaluated.size();
  const bool by_loss = !query.keep.has_value() || query.keep->metric == "loss";
  std::sort(evaluated.begin(), evaluated.end(),
            [&](const auto& a, const auto& b) {
              return by_loss ? a.first.loss < b.first.loss
                             : a.first.accuracy > b.first.accuracy;
            });
  if (query.keep.has_value() &&
      evaluated.size() > static_cast<size_t>(query.keep->top_k)) {
    evaluated.resize(static_cast<size_t>(query.keep->top_k));
  }
  for (auto& [model, request] : evaluated) {
    if (options_.commit_results) {
      MH_RETURN_IF_ERROR(repo_->Commit(request).status());
    }
    result.evaluated.push_back(std::move(model));
  }
  EndOp(keep_op, keep_in, result.evaluated.size());
  EndOp(op, candidates.size(), result.evaluated.size());
  return result;
}

}  // namespace modelhub
