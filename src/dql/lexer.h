#ifndef MODELHUB_DQL_LEXER_H_
#define MODELHUB_DQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace modelhub {
namespace dql {

enum class TokenType : uint8_t {
  kIdent,    ///< Identifiers and keywords (keywords matched by the parser).
  kString,   ///< Double-quoted string literal (contents, unquoted).
  kNumber,   ///< Integer or decimal literal (possibly negative).
  kSymbol,   ///< One of . , ( ) [ ] = != < <= > >=
  kEnd,      ///< End of input.
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;  ///< Byte offset in the query (for error messages).

  bool Is(TokenType t, std::string_view s) const {
    return type == t && text == s;
  }
  /// Case-insensitive keyword check against an identifier.
  bool IsKeyword(std::string_view keyword) const;
};

/// Tokenizes a DQL query. Fails with InvalidArgument on unterminated
/// strings or unexpected characters.
Result<std::vector<Token>> Lex(const std::string& query);

}  // namespace dql
}  // namespace modelhub

#endif  // MODELHUB_DQL_LEXER_H_
