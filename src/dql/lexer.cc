#include "dql/lexer.h"

#include <cctype>

namespace modelhub {
namespace dql {

bool Token::IsKeyword(std::string_view keyword) const {
  if (type != TokenType::kIdent || text.size() != keyword.size()) {
    return false;
  }
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Lex(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (c == '"') {
      token.type = TokenType::kString;
      ++i;
      while (i < n && query[i] != '"') {
        token.text.push_back(query[i++]);
      }
      if (i >= n) {
        return Status::InvalidArgument("DQL: unterminated string at offset " +
                                       std::to_string(token.position));
      }
      ++i;  // Closing quote.
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      token.type = TokenType::kNumber;
      token.text.push_back(query[i++]);
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       query[i] == '.' || query[i] == 'e' || query[i] == 'E' ||
                       ((query[i] == '+' || query[i] == '-') &&
                        (query[i - 1] == 'e' || query[i - 1] == 'E')))) {
        token.text.push_back(query[i++]);
      }
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      token.type = TokenType::kIdent;
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_' || query[i] == '$')) {
        token.text.push_back(query[i++]);
      }
    } else {
      token.type = TokenType::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = query.substr(i, 2);
        if (two == "!=" || two == "<=" || two == ">=") {
          token.text = two;
          i += 2;
          tokens.push_back(std::move(token));
          continue;
        }
      }
      switch (c) {
        case '.':
        case ',':
        case '(':
        case ')':
        case '[':
        case ']':
        case '=':
        case '<':
        case '>':
          token.text.push_back(c);
          ++i;
          break;
        default:
          return Status::InvalidArgument(
              std::string("DQL: unexpected character '") + c +
              "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace dql
}  // namespace modelhub
