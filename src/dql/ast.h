#ifndef MODELHUB_DQL_AST_H_
#define MODELHUB_DQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace modelhub {
namespace dql {

/// Comparison operators of DQL predicates.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One atomic predicate of a where-clause. Three forms (mirroring the
/// paper's Query 1):
///   attribute comparison   m1.creation_time > "2015-11-22"
///   LIKE pattern           m1.name like "alexnet_%"
///   graph traversal        m1["conv[1,3,5]"].next has POOL("MAX")
struct Predicate {
  enum class Kind : uint8_t { kCompare, kLike, kSelectorHas };
  Kind kind = Kind::kCompare;
  /// Preceded by `not`: the predicate's truth value is inverted.
  bool negated = false;

  // kCompare / kLike: the model attribute ("name", "creation_time",
  // "accuracy", "loss", "parent", "num_snapshots").
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  std::string literal;       ///< Raw literal text (string or number).
  bool literal_is_number = false;

  // kSelectorHas.
  std::string selector;      ///< Node-name regex inside m["..."].
  bool direction_next = true;  ///< .next vs .prev.
  std::string template_name;   ///< Built-in node template, e.g. "POOL".
  std::string template_arg;    ///< e.g. "MAX"; empty if none.
};

/// Disjunctive normal form: OR over ANDs of predicates.
struct Condition {
  std::vector<std::vector<Predicate>> disjuncts;
  bool empty() const { return disjuncts.empty(); }
};

/// select <var> where <cond>
struct SelectQuery {
  std::string var;
  Condition where;
};

/// slice <new> from <src> [where <cond>]
/// mutate <new>.input = <src>["sel"] and <new>.output = <src>["sel"]
struct SliceQuery {
  std::string new_var;
  std::string src_var;
  Condition where;
  std::string input_selector;
  std::string output_selector;
};

/// construct <new> from <src> [where <cond>] mutate <mutations>
struct ConstructQuery {
  struct Mutation {
    std::string selector;
    bool is_insert = true;       ///< insert vs delete.
    std::string template_name;   ///< For insert: layer template.
    std::string template_arg;    ///< Template argument (e.g. "MAX").
    /// For insert: the new node's name; a '$' expands to the matched
    /// node's name (our rendering of the paper's "relu$1" capture).
    std::string new_name;
  };
  std::string new_var;
  std::string src_var;
  Condition where;
  std::vector<Mutation> mutations;
};

/// evaluate <var> from <source> with config = <"default"|name>
/// [vary <dims>] [keep top(k, <metric>, iterations)]
struct EvaluateQuery {
  std::string var;
  /// Either a nested query in parentheses...
  std::shared_ptr<struct Query> subquery;
  /// ...or a LIKE pattern over version names.
  std::string from_pattern;
  std::string config;  ///< "default" or a committed version whose
                       ///< hyperparameters seed the config.
  struct VaryDim {
    std::string param;                ///< config.<param>.
    std::vector<std::string> values;  ///< Literal list; empty if auto.
    bool is_auto = false;
  };
  std::vector<VaryDim> vary;
  struct KeepRule {
    int top_k = 1;
    std::string metric;  ///< "loss" or "accuracy".
    int64_t iterations = 0;
  };
  std::optional<KeepRule> keep;
};

/// A parsed DQL statement.
struct Query {
  enum class Kind : uint8_t { kSelect, kSlice, kConstruct, kEvaluate };
  Kind kind = Kind::kSelect;
  /// `explain analyze <query>`: execute and attach per-operator row counts
  /// and timings to the result.
  bool analyze = false;
  SelectQuery select;
  SliceQuery slice;
  ConstructQuery construct;
  EvaluateQuery evaluate;
};

}  // namespace dql
}  // namespace modelhub

#endif  // MODELHUB_DQL_AST_H_
