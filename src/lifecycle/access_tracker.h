#ifndef MODELHUB_LIFECYCLE_ACCESS_TRACKER_H_
#define MODELHUB_LIFECYCLE_ACCESS_TRACKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace modelhub {

/// Thread-safe, exponentially-decayed per-snapshot access counts — the
/// demand signal behind access-aware re-archival. The serving path calls
/// RecordAccess with the snapshot key of every GET_SNAPSHOT; each
/// maintenance cycle snapshots the heat, classifies hot vs cold, and
/// then Decay()s so old traffic stops dominating the plan. Decay is by
/// logical maintenance cycle, not wall time, so tests are deterministic.
class AccessTracker {
 public:
  void RecordAccess(const std::string& snapshot_key);

  /// Multiplies every key's heat by `factor`, dropping keys that decay
  /// below a floor (so the map stays bounded by the live working set).
  void Decay(double factor = 0.5);

  /// Point-in-time copy of per-key heat.
  std::map<std::string, double> HeatSnapshot() const;

  /// Monotonic count of all accesses ever recorded (never decays); the
  /// daemon diffs it across cycles to skip re-archival on an idle hub.
  uint64_t total_accesses() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> heat_;  ///< Guarded by mu_.
  uint64_t total_ = 0;                  ///< Guarded by mu_.
};

}  // namespace modelhub

#endif  // MODELHUB_LIFECYCLE_ACCESS_TRACKER_H_
