#include "lifecycle/daemon.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "dlv/layout.h"
#include "dlv/repository.h"

namespace modelhub {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string MaintenanceStatus::ToJson() const {
  std::ostringstream out;
  out << "{\"enabled\":" << (enabled ? "true" : "false")
      << ",\"cycle_in_progress\":" << (cycle_in_progress ? "true" : "false")
      << ",\"cycles_started\":" << cycles_started
      << ",\"cycles_completed\":" << cycles_completed
      << ",\"cycles_failed\":" << cycles_failed
      << ",\"cycles_skipped\":" << cycles_skipped
      << ",\"bytes_reclaimed_total\":" << bytes_reclaimed_total
      << ",\"archive_generation\":" << archive_generation
      << ",\"gc_epoch\":" << gc_epoch
      << ",\"pending_generations\":" << pending_generations
      << ",\"shared_files\":" << shared_files
      << ",\"hot_snapshots\":" << hot_snapshots
      << ",\"cold_snapshots\":" << cold_snapshots
      << ",\"last_error\":\"" << JsonEscape(last_error) << "\""
      << ",\"last_tasks\":[";
  for (size_t i = 0; i < last_outcomes.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(last_outcomes[i].name)
        << "\",\"state\":\""
        << TaskOutcome::StateName(last_outcomes[i].state)
        << "\",\"wall_ms\":" << last_outcomes[i].wall_ms << "}";
  }
  out << "]}";
  return out.str();
}

LifecycleDaemon::LifecycleDaemon(Env* env, std::string repo_root,
                                 LifecycleOptions options)
    : env_(env), root_(std::move(repo_root)), options_(options) {}

LifecycleDaemon::~LifecycleDaemon() { (void)Stop(); }

Status LifecycleDaemon::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("maintenance daemon already running");
  }
  stop_requested_.store(false);
  cancel_.Reset();
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_.enabled = true;
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void LifecycleDaemon::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  cancel_.Cancel();
}

Status LifecycleDaemon::Stop() {
  RequestStop();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  return Status::OK();
}

Status LifecycleDaemon::RunOnce() {
  std::lock_guard<std::mutex> lock(cycle_mu_);
  accesses_at_last_cycle_ = tracker_.total_accesses();
  return Cycle();
}

void LifecycleDaemon::set_reload_callback(std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  reload_ = std::move(callback);
}

void LifecycleDaemon::set_yield(std::function<void()> yield) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  yield_ = std::move(yield);
}

MaintenanceStatus LifecycleDaemon::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

void LifecycleDaemon::Loop() {
  using Clock = std::chrono::steady_clock;
  auto next_cycle = Clock::now() + std::chrono::milliseconds(
                                       std::max(1, options_.interval_ms));
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Sleep in short slices so RequestStop (atomic store only — callable
    // from the server's signal-driven stop path) lands promptly.
    if (Clock::now() < next_cycle) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    next_cycle = Clock::now() + std::chrono::milliseconds(
                                    std::max(1, options_.interval_ms));
    std::lock_guard<std::mutex> lock(cycle_mu_);
    const uint64_t total = tracker_.total_accesses();
    if (total - accesses_at_last_cycle_ <
        options_.min_accesses_between_cycles) {
      std::lock_guard<std::mutex> status_lock(status_mu_);
      ++status_.cycles_skipped;
      MH_COUNTER("lifecycle.cycles.skipped")->Increment();
      continue;
    }
    accesses_at_last_cycle_ = total;
    (void)Cycle();
  }
}

Status LifecycleDaemon::Cycle() {
  TraceSpan span("lifecycle.cycle");
  Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    ++status_.cycles_started;
    status_.cycle_in_progress = true;
  }
  MH_COUNTER("lifecycle.cycles.started")->Increment();

  std::function<void()> reload;
  std::function<void()> yield;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    reload = reload_;
    yield = yield_;
  }

  // Shared mutable state the tasks thread through the graph.
  struct CycleState {
    std::optional<Repository> repo;
    ArchiveOptions archive_options;
    size_t num_snapshots = 0;
    uint64_t hot = 0;
    uint64_t cold = 0;
    GcReport gc;
  };
  auto state = std::make_shared<CycleState>();

  MaintenanceGraph graph;
  Status build = graph.Add("plan", {}, [this, state, &span]() -> Status {
    MH_ASSIGN_OR_RETURN(Repository repo, Repository::Open(env_, root_));
    state->repo.emplace(std::move(repo));
    MH_ASSIGN_OR_RETURN(const auto versions, state->repo->List());
    std::vector<std::string> keys;
    for (const auto& info : versions) {
      MH_ASSIGN_OR_RETURN(const int64_t count,
                          state->repo->NumSnapshots(info.name));
      for (int64_t s = 0; s < count; ++s) {
        keys.push_back(info.name + "/s" + std::to_string(s));
      }
    }
    state->num_snapshots = keys.size();
    // Demand signal: the tracker's decayed per-snapshot heat, with the
    // live server.op.get_snapshot.us metric as the cycle's context.
    const MetricsSnapshot metrics = MetricRegistry::Global()->Snapshot();
    if (const MetricValue* gets =
            metrics.Find("server.op.get_snapshot.us")) {
      span.Annotate("observed_gets", gets->histogram.count);
    }
    const std::map<std::string, double> heat = tracker_.HeatSnapshot();
    std::vector<std::pair<double, std::string>> ranked;
    for (const std::string& key : keys) {
      auto it = heat.find(key);
      ranked.push_back({it == heat.end() ? 0.0 : it->second, key});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t accessed = 0;
    for (const auto& [h, key] : ranked) {
      if (h > 0.0) ++accessed;
    }
    const size_t hot_count =
        accessed == 0
            ? 0
            : std::max<size_t>(
                  1, static_cast<size_t>(std::ceil(
                         options_.hot_fraction *
                         static_cast<double>(accessed))));
    ArchiveOptions& opts = state->archive_options;
    opts.solver = options_.solver;
    opts.archive_threads = options_.archive_threads;
    opts.budget_alpha = options_.default_budget_alpha;
    for (size_t i = 0; i < ranked.size(); ++i) {
      const auto& [h, key] = ranked[i];
      if (h > 0.0 && i < hot_count) {
        opts.group_budget_alpha[key] = options_.hot_budget_alpha;
        ++state->hot;
      } else if (h <= 0.0) {
        opts.group_budget_alpha[key] = options_.cold_budget_alpha;
        ++state->cold;
      }
    }
    MH_GAUGE("lifecycle.plan.hot_snapshots")
        ->Set(static_cast<int64_t>(state->hot));
    MH_GAUGE("lifecycle.plan.cold_snapshots")
        ->Set(static_cast<int64_t>(state->cold));
    return Status::OK();
  });
  if (build.ok()) {
    build = graph.Add("reencode", {"plan"}, [this, state]() -> Status {
      if (state->num_snapshots == 0) return Status::OK();
      Stopwatch reencode_watch;
      MH_ASSIGN_OR_RETURN(const ArchiveBuildReport report,
                          state->repo->Archive(state->archive_options));
      MH_HISTOGRAM("lifecycle.reencode.us")
          ->Record(static_cast<uint64_t>(reencode_watch.ElapsedMillis() *
                                         1000.0));
      MH_COUNTER("lifecycle.reencode.raw.bytes")
          ->Add(report.pipeline.raw_bytes);
      return Status::OK();
    });
  }
  if (build.ok()) {
    build = graph.Add("swap", {"reencode"}, [state, reload]() -> Status {
      if (state->num_snapshots == 0) return Status::OK();
      if (reload) reload();
      return Status::OK();
    });
  }
  if (build.ok()) {
    build = graph.Add("gc", {"swap"}, [this, state]() -> Status {
      MH_ASSIGN_OR_RETURN(state->gc, RunArchiveGc(env_, root_, options_.gc));
      return Status::OK();
    });
  }
  Status run = build.ok() ? graph.Run(&cancel_, yield) : build;

  tracker_.Decay(options_.heat_decay);

  uint64_t generation = 0;
  if (auto gen = ReadArchiveGeneration(env_, repo_layout::PasDir(root_));
      gen.ok()) {
    generation = *gen;
  }
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_.cycle_in_progress = false;
    status_.last_outcomes = graph.outcomes();
    status_.hot_snapshots = state->hot;
    status_.cold_snapshots = state->cold;
    status_.archive_generation = generation;
    status_.gc_epoch = state->gc.epoch;
    status_.pending_generations = state->gc.pending_generations.size();
    status_.shared_files = state->gc.shared_files;
    status_.bytes_reclaimed_total +=
        state->gc.reclaimed_bytes + state->gc.quarantine_bytes;
    if (run.ok()) {
      ++status_.cycles_completed;
      status_.last_error.clear();
    } else {
      ++status_.cycles_failed;
      status_.last_error = run.ToString();
    }
  }
  MH_HISTOGRAM("lifecycle.cycle.us")
      ->Record(static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0));
  if (run.ok()) {
    MH_COUNTER("lifecycle.cycles.completed")->Increment();
  } else {
    MH_COUNTER("lifecycle.cycles.failed")->Increment();
  }
  MH_GAUGE("lifecycle.archive.generation")
      ->Set(static_cast<int64_t>(generation));
  span.Annotate("ok", static_cast<uint64_t>(run.ok() ? 1 : 0));
  return run;
}

}  // namespace modelhub
