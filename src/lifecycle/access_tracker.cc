#include "lifecycle/access_tracker.h"

#include "common/metrics.h"

namespace modelhub {

namespace {
constexpr double kHeatFloor = 1e-3;
}  // namespace

void AccessTracker::RecordAccess(const std::string& snapshot_key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    heat_[snapshot_key] += 1.0;
    ++total_;
  }
  MH_COUNTER("lifecycle.accesses.recorded")->Increment();
}

void AccessTracker::Decay(double factor) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = heat_.begin(); it != heat_.end();) {
    it->second *= factor;
    if (it->second < kHeatFloor) {
      it = heat_.erase(it);
    } else {
      ++it;
    }
  }
}

std::map<std::string, double> AccessTracker::HeatSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heat_;
}

uint64_t AccessTracker::total_accesses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace modelhub
