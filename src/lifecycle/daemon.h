#ifndef MODELHUB_LIFECYCLE_DAEMON_H_
#define MODELHUB_LIFECYCLE_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "lifecycle/access_tracker.h"
#include "lifecycle/gc.h"
#include "lifecycle/task_graph.h"
#include "pas/archive.h"

namespace modelhub {

/// Maintenance-policy knobs (DESIGN.md §14). The alphas are per-snapshot
/// recreation budgets relative to SPT cost (ArchiveOptions::budget_alpha
/// semantics): hot snapshots get a tight alpha — the solver keeps their
/// delta chains short, so they decode fast — while cold snapshots get a
/// loose one and compress into longer, smaller chains.
struct LifecycleOptions {
  /// Cycle period of the background thread (Start()). RunOnce ignores it.
  int interval_ms = 60000;
  double default_budget_alpha = 2.0;
  double hot_budget_alpha = 1.2;
  double cold_budget_alpha = 4.0;
  /// Top fraction of accessed snapshots (by decayed heat) deemed hot.
  double hot_fraction = 0.25;
  ArchiveSolver solver = ArchiveSolver::kPasPt;
  int archive_threads = 0;
  GcOptions gc;
  /// A periodic cycle is skipped (not failed) when fewer accesses than
  /// this arrived since the previous cycle — an idle hub stays idle.
  uint64_t min_accesses_between_cycles = 1;
  /// Per-cycle multiplicative heat decay (logical time, not wall time).
  double heat_decay = 0.5;
};

/// Point-in-time daemon state — the MAINTAIN_STATUS surface spliced into
/// the server's STATS reply and printed by `dlv maintain`.
struct MaintenanceStatus {
  bool enabled = false;
  bool cycle_in_progress = false;
  uint64_t cycles_started = 0;
  uint64_t cycles_completed = 0;
  uint64_t cycles_failed = 0;
  uint64_t cycles_skipped = 0;
  uint64_t bytes_reclaimed_total = 0;
  uint64_t archive_generation = 0;
  uint64_t gc_epoch = 0;
  uint64_t pending_generations = 0;
  /// Superseded-generation files the last sweep kept because the current
  /// manifest still references them through cross-generation dedup.
  uint64_t shared_files = 0;
  uint64_t hot_snapshots = 0;
  uint64_t cold_snapshots = 0;
  std::string last_error;
  std::vector<TaskOutcome> last_outcomes;

  std::string ToJson() const;
};

/// The lifecycle maintenance daemon: periodically re-runs the storage-
/// graph solver with access-frequency-weighted recreation budgets,
/// re-archives the repository, swaps the serving plan, and sweeps
/// superseded chunk generations. One cycle is an interruptible
/// MaintenanceGraph of four tasks:
///
///   plan ──> reencode ──> swap ──> gc
///
/// `plan` classifies snapshots hot/cold from the AccessTracker (fed by
/// the serving path) plus live server.op.get_snapshot.us metrics;
/// `reencode` runs Repository::Archive with per-snapshot budget alphas
/// (crash-safe: journaled catalog write, manifest-last archive publish);
/// `swap` invokes the embedder's reload callback so the server picks up
/// the new generation; `gc` reclaims unpinned superseded generations.
/// Cancellation (RequestStop / SIGTERM) lands between tasks; each task
/// is atomic on disk, so a killed daemon leaves a repository that fsck
/// passes and the next cycle completes the remaining work.
///
/// Embedded in modelhubd (ServerOptions::enable_maintenance) or driven
/// synchronously via RunOnce (`dlv maintain`).
class LifecycleDaemon {
 public:
  LifecycleDaemon(Env* env, std::string repo_root,
                  LifecycleOptions options = {});
  ~LifecycleDaemon();

  LifecycleDaemon(const LifecycleDaemon&) = delete;
  LifecycleDaemon& operator=(const LifecycleDaemon&) = delete;

  /// Starts the periodic background thread.
  Status Start();
  /// Requests cancellation: atomic stores only (safe from stop paths).
  /// The in-flight task finishes; subsequent tasks are cancelled.
  void RequestStop();
  /// RequestStop + join. Idempotent.
  Status Stop();

  /// One synchronous maintenance cycle, regardless of interval or access
  /// thresholds. Serialized against the background thread's cycles.
  Status RunOnce();

  /// The tracker the serving path feeds (thread-safe).
  AccessTracker* access_tracker() { return &tracker_; }

  MaintenanceStatus status() const;
  bool running() const { return running_.load(std::memory_order_acquire); }
  const LifecycleOptions& options() const { return options_; }

  /// Called after `reencode` publishes a new generation (the plan swap):
  /// the embedding server reloads its shared ArchiveReader here.
  void set_reload_callback(std::function<void()> callback);
  /// Called at every task boundary; the server parks the daemon here
  /// while request queues are deep (compaction yields to serving).
  void set_yield(std::function<void()> yield);

 private:
  void Loop();
  Status Cycle();

  Env* env_;
  std::string root_;
  LifecycleOptions options_;
  AccessTracker tracker_;
  CancelToken cancel_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;

  std::mutex hooks_mu_;
  std::function<void()> reload_;  ///< Guarded by hooks_mu_.
  std::function<void()> yield_;   ///< Guarded by hooks_mu_.

  std::mutex cycle_mu_;  ///< Serializes Cycle() across Loop and RunOnce.
  uint64_t accesses_at_last_cycle_ = 0;  ///< Guarded by cycle_mu_.

  mutable std::mutex status_mu_;
  MaintenanceStatus status_;  ///< Guarded by status_mu_.
};

}  // namespace modelhub

#endif  // MODELHUB_LIFECYCLE_DAEMON_H_
