#ifndef MODELHUB_LIFECYCLE_GC_H_
#define MODELHUB_LIFECYCLE_GC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace modelhub {

struct GcOptions {
  /// Report what would be reclaimed without deleting anything.
  bool dry_run = false;
  /// Also sweep files parked in quarantine/ by recovery or fsck (off by
  /// default — quarantined artifacts are forensic evidence).
  bool include_quarantine = false;
};

/// What one GC sweep observed and did. "Stale" files belong to archive
/// generations older than the committed manifest; the pinned subset is
/// protected by in-flight retrievals and left for a later sweep.
struct GcReport {
  uint64_t epoch = 0;               ///< Sweep epoch of this run.
  uint64_t current_generation = 0;  ///< Generation the manifest commits.
  bool dry_run = false;

  uint64_t stale_files = 0;
  uint64_t stale_bytes = 0;
  uint64_t reclaimed_files = 0;
  uint64_t reclaimed_bytes = 0;
  uint64_t pinned_files = 0;
  uint64_t pinned_bytes = 0;
  /// Superseded-generation files the committed manifest still references
  /// through cross-generation dedup (shared chunks). Never reclaimed —
  /// they are live data, reclaimable only once a later rebuild stops
  /// referencing them.
  uint64_t shared_files = 0;
  uint64_t shared_bytes = 0;
  /// Chunk-index entries purged because their data file is gone.
  uint64_t index_entries_purged = 0;
  /// Distinct superseded generations still pinned (pending GC).
  std::vector<uint64_t> pending_generations;

  uint64_t quarantine_files = 0;
  uint64_t quarantine_bytes = 0;

  std::string ToString() const;
};

/// Garbage-collects unreferenced archive chunk files under
/// `<repo_root>/pas`: begins a new sweep epoch, then deletes every
/// generation-numbered data file whose generation is strictly older than
/// the one the committed manifest names, that the manifest does not
/// reference through cross-generation dedup, AND that no live retrieval
/// pins. After deleting, chunk-index entries pointing at removed files
/// are purged (the refcount-0 reclamation of DESIGN.md §15).
/// Files of generations newer than the manifest (an in-flight rebuild's
/// output) are never touched; neither is the manifest itself. Readers
/// only ever pin the committed generation (pin-then-reverify in
/// ArchiveReader::Open), so a generation observed unpinned here can
/// never regain a pin mid-sweep — deleting it is race-free.
///
/// A repo with no archive yields an empty report, not an error.
Result<GcReport> RunArchiveGc(Env* env, const std::string& repo_root,
                              const GcOptions& options = {});

}  // namespace modelhub

#endif  // MODELHUB_LIFECYCLE_GC_H_
