#ifndef MODELHUB_LIFECYCLE_TASK_GRAPH_H_
#define MODELHUB_LIFECYCLE_TASK_GRAPH_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace modelhub {

/// Cooperative cancellation flag shared between the maintenance daemon
/// and the tasks it runs. Cancel() is a single atomic store, so it is
/// safe from signal handlers and from the server's stop path.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// What happened to one task of a maintenance cycle.
struct TaskOutcome {
  enum class State { kPending, kOk, kFailed, kSkipped, kCancelled };

  std::string name;
  State state = State::kPending;
  std::string message;  ///< Failure text (empty otherwise).
  double wall_ms = 0.0;

  static std::string_view StateName(State state);
};

/// An interruptible dependency graph of named maintenance steps (the
/// dependency-counted ObjectManager idiom): each task declares the tasks
/// it depends on, and Run executes them in dependency order, checking the
/// cancel token and invoking the yield hook at every task boundary — so
/// background compaction yields to serving, and SIGTERM interrupts the
/// cycle between tasks, never inside a half-applied step. Each step is
/// itself atomic-on-disk (journaled catalog writes, manifest-last archive
/// publishes), which is what makes boundary-only interruption safe.
///
/// A failed task transitively skips its dependents; independent branches
/// still run. Outcomes of every task are recorded for MAINTAIN_STATUS.
class MaintenanceGraph {
 public:
  using TaskFn = std::function<Status()>;

  /// Registers `name` depending on `deps`. Dependencies must already be
  /// registered — which forces insertion order to be topological, so Run
  /// is a single in-order pass.
  Status Add(const std::string& name, const std::vector<std::string>& deps,
             TaskFn fn);

  /// Runs every task whose dependencies succeeded. `yield` (if set) is
  /// called before each task. Returns OK when all tasks succeeded, the
  /// first failure otherwise; cancellation returns kUnavailable with the
  /// remaining tasks marked kCancelled.
  Status Run(const CancelToken* cancel = nullptr,
             const std::function<void()>& yield = {});

  const std::vector<TaskOutcome>& outcomes() const { return outcomes_; }

 private:
  struct Task {
    std::string name;
    std::vector<size_t> deps;  ///< Indices into tasks_.
    TaskFn fn;
  };

  std::vector<Task> tasks_;
  std::vector<TaskOutcome> outcomes_;
};

}  // namespace modelhub

#endif  // MODELHUB_LIFECYCLE_TASK_GRAPH_H_
