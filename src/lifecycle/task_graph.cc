#include "lifecycle/task_graph.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace modelhub {

std::string_view TaskOutcome::StateName(State state) {
  switch (state) {
    case State::kPending:
      return "pending";
    case State::kOk:
      return "ok";
    case State::kFailed:
      return "failed";
    case State::kSkipped:
      return "skipped";
    case State::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status MaintenanceGraph::Add(const std::string& name,
                             const std::vector<std::string>& deps,
                             TaskFn fn) {
  if (fn == nullptr) {
    return Status::InvalidArgument("task has no body: " + name);
  }
  for (const Task& task : tasks_) {
    if (task.name == name) {
      return Status::AlreadyExists("duplicate task: " + name);
    }
  }
  Task task;
  task.name = name;
  task.fn = std::move(fn);
  for (const std::string& dep : deps) {
    size_t found = tasks_.size();
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].name == dep) found = i;
    }
    if (found == tasks_.size()) {
      return Status::NotFound("task " + name + " depends on unregistered " +
                              dep);
    }
    task.deps.push_back(found);
  }
  tasks_.push_back(std::move(task));
  return Status::OK();
}

Status MaintenanceGraph::Run(const CancelToken* cancel,
                             const std::function<void()>& yield) {
  outcomes_.assign(tasks_.size(), TaskOutcome{});
  for (size_t i = 0; i < tasks_.size(); ++i) {
    outcomes_[i].name = tasks_[i].name;
  }
  Status first_failure = Status::OK();
  bool cancelled = false;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    TaskOutcome& outcome = outcomes_[i];
    if (cancelled || (cancel != nullptr && cancel->cancelled())) {
      cancelled = true;
      outcome.state = TaskOutcome::State::kCancelled;
      MH_COUNTER("lifecycle.tasks.cancelled")->Increment();
      continue;
    }
    bool runnable = true;
    for (size_t dep : tasks_[i].deps) {
      if (outcomes_[dep].state != TaskOutcome::State::kOk) runnable = false;
    }
    if (!runnable) {
      outcome.state = TaskOutcome::State::kSkipped;
      outcome.message = "dependency did not succeed";
      MH_COUNTER("lifecycle.tasks.skipped")->Increment();
      continue;
    }
    if (yield) yield();
    TraceSpan span("lifecycle.task");
    span.Annotate("task", tasks_[i].name);
    Stopwatch watch;
    Status status = tasks_[i].fn();
    outcome.wall_ms = watch.ElapsedMillis();
    if (status.ok()) {
      outcome.state = TaskOutcome::State::kOk;
      MH_COUNTER("lifecycle.tasks.ok")->Increment();
    } else {
      outcome.state = TaskOutcome::State::kFailed;
      outcome.message = status.ToString();
      MH_COUNTER("lifecycle.tasks.failed")->Increment();
      if (first_failure.ok()) first_failure = status;
    }
  }
  if (cancelled) {
    return Status::Unavailable("maintenance cycle cancelled");
  }
  return first_failure;
}

}  // namespace modelhub
