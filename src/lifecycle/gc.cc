#include "lifecycle/gc.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/metrics.h"
#include "common/trace.h"
#include "dlv/layout.h"
#include "pas/archive.h"
#include "pas/chunk_index.h"
#include "pas/generation_pins.h"

namespace modelhub {

std::string GcReport::ToString() const {
  std::ostringstream out;
  out << "gc epoch " << epoch << (dry_run ? " (dry run)" : "")
      << ": archive generation " << current_generation << "\n";
  out << "  stale: " << stale_files << " file(s), " << stale_bytes
      << " byte(s)\n";
  out << "  " << (dry_run ? "reclaimable" : "reclaimed") << ": "
      << reclaimed_files << " file(s), " << reclaimed_bytes << " byte(s)\n";
  out << "  pinned: " << pinned_files << " file(s), " << pinned_bytes
      << " byte(s)";
  if (!pending_generations.empty()) {
    out << " — pending generation(s):";
    for (uint64_t gen : pending_generations) out << " " << gen;
  }
  out << "\n";
  if (shared_files > 0) {
    out << "  shared: " << shared_files << " file(s), " << shared_bytes
        << " byte(s) still referenced through dedup\n";
  }
  if (index_entries_purged > 0) {
    out << "  chunk index: " << index_entries_purged
        << " entry(s) purged\n";
  }
  if (quarantine_files > 0) {
    out << "  quarantine: " << quarantine_files << " file(s), "
        << quarantine_bytes << " byte(s) "
        << (dry_run ? "reclaimable" : "reclaimed") << "\n";
  }
  return out.str();
}

Result<GcReport> RunArchiveGc(Env* env, const std::string& repo_root,
                              const GcOptions& options) {
  TraceSpan span("lifecycle.gc");
  GcReport report;
  report.dry_run = options.dry_run;
  GenerationPinRegistry* pins = GenerationPinRegistry::Global();
  report.epoch = pins->BeginSweepEpoch();
  MH_COUNTER("lifecycle.gc.runs")->Increment();
  MH_GAUGE("lifecycle.gc.epoch")
      ->Set(static_cast<int64_t>(report.epoch));

  const std::string pas_dir = repo_layout::PasDir(repo_root);
  if (env->FileExists(JoinPath(pas_dir, "manifest.bin"))) {
    MH_ASSIGN_OR_RETURN(report.current_generation,
                        ReadArchiveGeneration(env, pas_dir));
    MH_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                        env->ListDir(pas_dir));
    // Files the committed manifest references — its own generation's data
    // files plus any prior-generation files it borrows chunks from via
    // dedup. Referenced files are live regardless of generation number.
    std::set<std::string> referenced;
    MH_ASSIGN_OR_RETURN(const std::vector<std::string> manifest_files,
                        ReadArchiveManifestFiles(env, pas_dir));
    referenced.insert(manifest_files.begin(), manifest_files.end());
    std::set<uint64_t> pending;
    for (const std::string& name : names) {
      uint64_t gen = 0;
      if (!ParseArchiveDataFileName(name, &gen)) continue;
      // Strictly-older only: generations beyond the manifest are an
      // in-flight rebuild's freshly written files.
      if (gen >= report.current_generation) continue;
      const std::string path = JoinPath(pas_dir, name);
      uint64_t bytes = 0;
      if (auto size = env->FileSize(path); size.ok()) bytes = *size;
      if (referenced.count(name)) {
        ++report.shared_files;
        report.shared_bytes += bytes;
        continue;
      }
      ++report.stale_files;
      report.stale_bytes += bytes;
      if (pins->IsPinned(env, pas_dir, gen)) {
        ++report.pinned_files;
        report.pinned_bytes += bytes;
        pending.insert(gen);
        continue;
      }
      if (!options.dry_run) {
        if (!env->DeleteFile(path).ok()) continue;
      }
      ++report.reclaimed_files;
      report.reclaimed_bytes += bytes;
    }
    report.pending_generations.assign(pending.begin(), pending.end());
    // Refcount-0 reclamation in the chunk index: entries whose data file
    // no longer exists can never be referenced again — drop them so the
    // index only advertises chunks future builds can actually reuse.
    // Best effort: the index is derived state and fsck can rebuild it.
    if (!options.dry_run) {
      if (auto index = ChunkIndex::Load(env, pas_dir); index.ok()) {
        report.index_entries_purged =
            index->PruneFiles([&](const std::string& file) {
              return env->FileExists(JoinPath(pas_dir, file));
            });
        if (report.index_entries_purged > 0) {
          (void)index->Save(env, pas_dir);
        }
      }
    }
  }

  if (options.include_quarantine) {
    const std::string qdir = repo_layout::QuarantineDir(repo_root);
    if (env->DirExists(qdir)) {
      if (auto names = env->ListDir(qdir); names.ok()) {
        for (const std::string& name : *names) {
          const std::string path = JoinPath(qdir, name);
          if (env->DirExists(path)) continue;
          uint64_t bytes = 0;
          if (auto size = env->FileSize(path); size.ok()) bytes = *size;
          if (!options.dry_run) {
            if (!env->DeleteFile(path).ok()) continue;
          }
          ++report.quarantine_files;
          report.quarantine_bytes += bytes;
        }
      }
    }
  }

  if (!options.dry_run) {
    MH_COUNTER("lifecycle.gc.reclaimed.bytes")
        ->Add(report.reclaimed_bytes + report.quarantine_bytes);
    MH_COUNTER("lifecycle.gc.reclaimed.files")
        ->Add(report.reclaimed_files + report.quarantine_files);
  }
  MH_COUNTER("lifecycle.gc.index.purged")
      ->Add(report.index_entries_purged);
  MH_GAUGE("lifecycle.gc.pinned.files")
      ->Set(static_cast<int64_t>(report.pinned_files));
  MH_GAUGE("lifecycle.gc.shared.files")
      ->Set(static_cast<int64_t>(report.shared_files));
  span.Annotate("reclaimed_bytes", report.reclaimed_bytes);
  span.Annotate("pinned_files", report.pinned_files);
  return report;
}

}  // namespace modelhub
