#ifndef MODELHUB_SERVER_MODELHUBD_H_
#define MODELHUB_SERVER_MODELHUBD_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/result.h"
#include "common/slow_log.h"
#include "common/thread_pool.h"
#include "dlv/repository.h"
#include "lifecycle/daemon.h"
#include "net/frame.h"
#include "net/socket.h"
#include "pas/coalesce.h"

namespace modelhub {

/// modelhubd configuration (DESIGN.md §9).
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; read it back with port().

  /// Connection-serving workers. Each worker owns one connection at a
  /// time and serves its requests serially (the protocol has no
  /// interleaving), so this is also the request-level parallelism.
  int num_workers = 8;
  /// Threads of the separate retrieval pool that
  /// ArchiveReader::RetrieveSnapshotsParallel fans out on. Kept distinct
  /// from the worker pool so a retrieval can never deadlock waiting for
  /// pool slots its own handler occupies.
  int retrieval_threads = 4;

  /// Backpressure: accepted connections wait in a bounded queue until a
  /// worker is free. When the queue is full — or active + queued
  /// connections reach max_connections — the server sheds: it writes one
  /// kUnavailable frame and closes instead of queueing unboundedly.
  int max_connections = 64;
  int queue_capacity = 32;

  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Budget for writing one response / reading one request body.
  int io_timeout_ms = 10000;
  /// How long a connection may sit idle between requests.
  int idle_timeout_ms = 30000;

  /// Coalescing linger window (see SnapshotCoalescer): 0 = pure
  /// single-flight, > 0 keeps completed retrievals joinable that long.
  int coalesce_linger_ms = 0;

  /// Slow-request log threshold: requests whose dispatch takes at least
  /// this long land in a bounded ring dumped via STATS (0 disables).
  int slow_request_us = 100000;
  int slow_log_capacity = 64;

  /// Graceful-drain grace window. 0 (the default) preserves the classic
  /// drain: RequestStop immediately stops accepting. > 0 keeps the
  /// server accepting AND serving for this long after RequestStop while
  /// PING advertises state=draining — so a router steers new work away
  /// from a live-but-leaving backend instead of eating connection
  /// refusals that would trip its breaker.
  int drain_grace_ms = 0;

  /// Embeds the lifecycle maintenance daemon (DESIGN.md §14): periodic
  /// access-aware re-archival, plan swap, and chunk GC, running inside
  /// the serving process and yielding to request traffic.
  bool enable_maintenance = false;
  LifecycleOptions maintenance;
};

/// The ModelHub daemon: serves a DLV repository over the wire protocol of
/// net/frame.h (PING, LIST_MODELS, GET_SNAPSHOT exact + progressive,
/// DQL_QUERY, STATS, SHUTDOWN).
///
/// Threading model (DESIGN.md §9): one accept thread feeds a bounded
/// pending-connection queue; num_workers persistent loops on an owned
/// ThreadPool pop connections and serve them serially; snapshot
/// retrievals go through a single-flight SnapshotCoalescer onto a second
/// pool running the computation-sharing parallel scheduler. DQL runs
/// read-only (commit_results = false) — the serving path never mutates
/// the repository, so concurrent readers need no catalog lock.
///
/// Graceful drain: RequestStop() (async-signal-safe: an atomic store and
/// a pipe write) stops the accept loop; workers finish the request they
/// are executing, responses in flight are written in full, idle
/// connections are closed, and never-served queued connections get a
/// kUnavailable frame. Stop() performs the drain and joins everything.
class ModelHubServer {
 public:
  ModelHubServer(Env* env, std::string repo_root, ServerOptions options = {});
  ~ModelHubServer();

  ModelHubServer(const ModelHubServer&) = delete;
  ModelHubServer& operator=(const ModelHubServer&) = delete;

  /// Opens the repository (and eagerly the PAS archive, if one exists —
  /// the lazy OpenArchive cache is not built for concurrent first use),
  /// binds the listener, and starts the accept thread and workers.
  Status Start();

  /// The bound port (valid after Start; resolves ephemeral binds).
  int port() const;

  const ServerOptions& options() const { return options_; }

  /// True between Start() and the end of Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once a drain has been requested (RequestStop, Stop, or a
  /// SHUTDOWN rpc) — the serve loops poll this to know when to exit.
  bool stop_requested() const { return stopping_.load(); }

  /// Begins the drain without blocking. Safe from signal handlers.
  void RequestStop();

  /// Drains and joins. Idempotent; returns the first Start error if the
  /// server never ran.
  Status Stop();

  /// Blocks the calling thread until RequestStop() is observed (polling,
  /// so a SIGTERM-handler store is enough to end it).
  void WaitUntilStopRequested() const;

  /// Exact coalescer counters for tests.
  uint64_t coalesce_hits() const;
  uint64_t coalesce_misses() const;

  /// The embedded maintenance daemon (null unless enable_maintenance).
  LifecycleDaemon* maintenance() { return maintenance_.get(); }

 private:
  struct PendingConn {
    Socket sock;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(Socket sock);

  /// Dispatches one decoded request; the response payload goes in `*out`.
  Status Dispatch(const Frame& request, std::string* out);
  Status HandleListModels(std::string* out);
  Status HandleGetSnapshot(const Frame& request, std::string* out);
  Status HandleDqlQuery(const Frame& request, std::string* out);
  Status HandleStats(std::string* out);
  Status HandleGetTrace(std::string* out);

  /// The coalesced fetch body: exact retrieval (planes == 0) through the
  /// archive's shared-computation parallel scheduler with a staging
  /// fallback, or progressive bounds (planes 1..3).
  Result<std::string> FetchSnapshot(const std::string& key, int planes);

  /// Writes a kUnavailable frame (opcode 0 — the request was never read)
  /// and lets `sock` close.
  void Shed(Socket sock, const char* reason);

  void UpdateUptimeGauge() const;

  Env* const env_;
  const std::string repo_root_;
  const ServerOptions options_;

  std::optional<Repository> repo_;
  std::optional<Listener> listener_;
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<ThreadPool> retrieval_pool_;
  std::unique_ptr<SnapshotCoalescer> coalescer_;
  std::unique_ptr<LifecycleDaemon> maintenance_;
  std::thread accept_thread_;
  WaitGroup worker_group_;

  std::atomic<bool> running_{false};
  /// Two-phase drain: stopping_ flips at RequestStop (PING advertises
  /// draining, the grace clock starts); halt_ flips once the grace
  /// window lapses (workers exit, in-flight idle reads cancel). With
  /// drain_grace_ms == 0 the two are effectively simultaneous.
  std::atomic<bool> stopping_{false};
  std::atomic<bool> halt_{false};
  std::atomic<int> active_connections_{0};
  std::chrono::steady_clock::time_point started_at_;
  SlowRequestLog slow_log_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> pending_;  ///< Guarded by queue_mu_.
};

/// The shared daemon entry point behind `dlv serve` and the standalone
/// `modelhubd` binary: starts a server, prints
/// "modelhubd listening on <host>:<port>" to stdout, and blocks until
/// SIGTERM/SIGINT or a SHUTDOWN rpc, then drains gracefully. Returns a
/// process exit code.
int RunServerMain(Env* env, const std::string& repo_root,
                  ServerOptions options);

}  // namespace modelhub

#endif  // MODELHUB_SERVER_MODELHUBD_H_
