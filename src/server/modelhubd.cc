#include "server/modelhubd.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dql/engine.h"
#include "pas/archive.h"

namespace modelhub {
namespace {

/// Wire overhead of one frame: length prefix + version + opcode + CRC.
constexpr uint64_t kFrameOverheadBytes = 4 + kFrameHeaderBytes + 4;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

uint64_t UnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Per-op latency histograms (MH_HISTOGRAM needs literal names).
Histogram* OpLatency(uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return MH_HISTOGRAM("server.op.ping.us");
    case Opcode::kListModels:
      return MH_HISTOGRAM("server.op.list_models.us");
    case Opcode::kGetSnapshot:
      return MH_HISTOGRAM("server.op.get_snapshot.us");
    case Opcode::kDqlQuery:
      return MH_HISTOGRAM("server.op.dql_query.us");
    case Opcode::kStats:
      return MH_HISTOGRAM("server.op.stats.us");
    case Opcode::kShutdown:
      return MH_HISTOGRAM("server.op.shutdown.us");
    case Opcode::kGetTrace:
      return MH_HISTOGRAM("server.op.get_trace.us");
    case Opcode::kGetMetrics:
      return MH_HISTOGRAM("server.op.get_metrics.us");
  }
  return MH_HISTOGRAM("server.op.unknown.us");
}

}  // namespace

ModelHubServer::ModelHubServer(Env* env, std::string repo_root,
                               ServerOptions options)
    : env_(env),
      repo_root_(std::move(repo_root)),
      options_(options),
      slow_log_(static_cast<size_t>(std::max(1, options_.slow_log_capacity))) {}

ModelHubServer::~ModelHubServer() { (void)Stop(); }

Status ModelHubServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  MH_ASSIGN_OR_RETURN(Repository repo, Repository::Open(env_, repo_root_));
  repo_.emplace(std::move(repo));
  // Eagerly resolve the archive reader so worker threads never race on a
  // cold cache. A repository that was never archived serves snapshots
  // from staging instead.
  if (auto archive = repo_->SharedArchive(); archive.ok()) {
    (*archive)->EnableChunkCache(true);
  }
  MH_ASSIGN_OR_RETURN(Listener listener,
                      Listener::Bind(options_.host, options_.port));
  listener_.emplace(std::move(listener));
  coalescer_ = std::make_unique<SnapshotCoalescer>(
      [this](const std::string& key, int planes) {
        return FetchSnapshot(key, planes);
      },
      options_.coalesce_linger_ms);
  retrieval_pool_ =
      std::make_unique<ThreadPool>(std::max(1, options_.retrieval_threads));
  workers_ = std::make_unique<ThreadPool>(std::max(1, options_.num_workers));

  stopping_.store(false);
  halt_.store(false);
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  MH_COUNTER("server.starts.count")->Increment();
  UpdateUptimeGauge();
  for (int i = 0; i < workers_->num_threads(); ++i) {
    workers_->Schedule(&worker_group_, [this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.enable_maintenance) {
    maintenance_ = std::make_unique<LifecycleDaemon>(env_, repo_root_,
                                                     options_.maintenance);
    // The plan swap: after a cycle re-archives, the server atomically
    // adopts the new generation. In-flight retrievals finish on their
    // pinned old reader; the superseded generation is swept by a later
    // GC once those pins drain.
    maintenance_->set_reload_callback([this] {
      if (auto reloaded = repo_->ReloadArchive(); reloaded.ok()) {
        (*reloaded)->EnableChunkCache(true);
      }
    });
    // Budget throttling: compaction yields at task boundaries while
    // request traffic is queued (bounded backoff so a saturated queue
    // cannot stall maintenance forever).
    maintenance_->set_yield([this] {
      for (int i = 0; i < 200 && !stopping_.load(); ++i) {
        bool busy;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          busy = !pending_.empty();
        }
        if (!busy) break;
        MH_COUNTER("lifecycle.yield.count")->Increment();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    const Status maintain_started = maintenance_->Start();
    if (!maintain_started.ok()) {
      (void)Stop();
      return maintain_started;
    }
  }
  return Status::OK();
}

int ModelHubServer::port() const {
  return listener_.has_value() ? listener_->port() : 0;
}

void ModelHubServer::RequestStop() {
  // Only atomic stores and a pipe write — callable from signal handlers.
  stopping_.store(true);
  if (maintenance_ != nullptr) maintenance_->RequestStop();
  if (listener_.has_value()) listener_->Wake();
}

void ModelHubServer::WaitUntilStopRequested() const {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Status ModelHubServer::Stop() {
  if (!running_.load()) return Status::OK();
  RequestStop();
  if (maintenance_ != nullptr) (void)maintenance_->Stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  halt_.store(true);
  queue_cv_.notify_all();
  worker_group_.Wait();
  // Connections that were queued but never reached a worker get a polite
  // refusal instead of a silent close.
  std::deque<PendingConn> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(pending_);
    MH_GAUGE("server.queue.depth")->Set(0);
  }
  for (PendingConn& pc : leftover) {
    Shed(std::move(pc.sock), "server draining");
  }
  workers_.reset();
  retrieval_pool_.reset();
  coalescer_.reset();
  maintenance_.reset();
  listener_.reset();
  repo_.reset();
  UpdateUptimeGauge();
  MH_COUNTER("server.stops.count")->Increment();
  running_.store(false, std::memory_order_release);
  return Status::OK();
}

uint64_t ModelHubServer::coalesce_hits() const {
  return coalescer_ != nullptr ? coalescer_->hits() : 0;
}

uint64_t ModelHubServer::coalesce_misses() const {
  return coalescer_ != nullptr ? coalescer_->misses() : 0;
}

void ModelHubServer::UpdateUptimeGauge() const {
  MH_GAUGE("server.uptime_seconds")
      ->Set(static_cast<int64_t>(ElapsedUs(started_at_) / 1000000));
}

void ModelHubServer::Shed(Socket sock, const char* reason) {
  MH_COUNTER("server.shed.count")->Increment();
  // Opcode 0: the request was never read, so there is nothing to echo.
  (void)WriteFrame(&sock, 0,
                   EncodeResponsePayload(Status::Unavailable(reason), ""),
                   Deadline::AfterMs(1000));
}

void ModelHubServer::AcceptLoop() {
  // Drain choreography: once stopping_ flips, keep accepting and serving
  // for drain_grace_ms (PING advertises draining, so routers steer away
  // on their own schedule) before halting. Grace 0 halts immediately —
  // the classic drain.
  std::optional<std::chrono::steady_clock::time_point> halt_at;
  for (;;) {
    if (stopping_.load() && !halt_at.has_value()) {
      if (options_.drain_grace_ms <= 0) break;
      halt_at = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options_.drain_grace_ms);
    }
    int timeout_ms = -1;
    if (halt_at.has_value()) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*halt_at -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) break;
      timeout_ms = static_cast<int>(remaining.count());
    }
    Result<Socket> accepted = listener_->Accept(timeout_ms);
    if (!accepted.ok()) {
      // Timeout: the grace window lapsed (re-checked above). Wake: the
      // drain began (or a spurious wake) — loop to start the clock.
      continue;
    }
    MH_COUNTER("server.accepted.count")->Increment();
    std::unique_lock<std::mutex> lock(queue_mu_);
    const size_t queued = pending_.size();
    if (queued >= static_cast<size_t>(options_.queue_capacity) ||
        active_connections_.load() + static_cast<int>(queued) >=
            options_.max_connections) {
      lock.unlock();
      Shed(accepted.MoveValue(), "server at capacity");
      continue;
    }
    pending_.push_back(
        {accepted.MoveValue(), std::chrono::steady_clock::now()});
    MH_GAUGE("server.queue.depth")->Set(static_cast<int64_t>(pending_.size()));
    lock.unlock();
    queue_cv_.notify_one();
  }
  // Accepting is over: halt the workers (in-flight responses still
  // complete — ServeConnection only checks halt_ between requests).
  halt_.store(true);
  queue_cv_.notify_all();
}

void ModelHubServer::WorkerLoop() {
  for (;;) {
    PendingConn pc;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return halt_.load() || !pending_.empty(); });
      if (halt_.load()) break;
      pc = std::move(pending_.front());
      pending_.pop_front();
      MH_GAUGE("server.queue.depth")
          ->Set(static_cast<int64_t>(pending_.size()));
    }
    const uint64_t waited_us = ElapsedUs(pc.enqueued);
    MH_HISTOGRAM("server.queue.wait.us")->Record(waited_us);
    // A connection that waited longer than the idle timeout is stale: its
    // client has almost certainly timed out, and any request already on
    // the wire would be served against an expired deadline. Shed it with
    // a typed refusal instead of burning a worker on a dead exchange.
    if (waited_us / 1000 >
        static_cast<uint64_t>(std::max(0, options_.idle_timeout_ms))) {
      Shed(std::move(pc.sock), "queued past idle timeout");
      continue;
    }
    active_connections_.fetch_add(1);
    MH_GAUGE("server.connections.active")->Add(1);
    ServeConnection(std::move(pc.sock));
    MH_GAUGE("server.connections.active")->Add(-1);
    active_connections_.fetch_sub(1);
  }
}

void ModelHubServer::ServeConnection(Socket sock) {
  while (!halt_.load()) {
    Frame request;
    bool clean_eof = false;
    // The idle read is cancellable at halt (the grace window keeps
    // serving through a mere drain request); once a request is in hand,
    // its dispatch and response write run to completion even mid-drain.
    const Status read =
        ReadFrame(&sock, &request, options_.max_frame_bytes,
                  Deadline::AfterMs(options_.idle_timeout_ms), &halt_,
                  &clean_eof);
    if (!read.ok()) {
      if (!clean_eof && !halt_.load() && !read.IsDeadlineExceeded() &&
          !read.IsUnavailable()) {
        MH_COUNTER("server.errors.count")->Increment();
      }
      break;
    }
    MH_COUNTER("server.bytes.in")
        ->Add(request.payload.size() + kFrameOverheadBytes);

    std::string result;
    Status status;
    const TraceContext ctx = ContextFromFrame(request);
    uint64_t latency_us = 0;
    {
      // The request's trace context governs every span recorded below it
      // — including retrieval/PAS spans on the pool threads, which
      // inherit it through ThreadPool::Schedule.
      ScopedTraceContext trace_scope(ctx);
      TraceSpan span("server.request");
      span.Annotate("op", std::string(OpcodeToString(request.opcode)));
      const auto dispatched_at = std::chrono::steady_clock::now();
      if (request.version != kWireVersion) {
        status = Status::InvalidArgument(
            "unsupported wire version " + std::to_string(request.version));
      } else {
        status = Dispatch(request, &result);
      }
      latency_us = ElapsedUs(dispatched_at);
      OpLatency(request.opcode)->Record(latency_us);
      span.Annotate("status", std::string(StatusCodeToString(status.code())));
      span.Annotate("result_bytes", static_cast<uint64_t>(result.size()));
    }
    MH_COUNTER("server.requests.count")->Increment();
    if (!status.ok()) MH_COUNTER("server.errors.count")->Increment();
    const bool after_deadline = ctx.deadline_expired();
    if (after_deadline) {
      MH_COUNTER("server.deadline.expired.count")->Increment();
    }
    if (options_.slow_request_us > 0 &&
        latency_us >= static_cast<uint64_t>(options_.slow_request_us)) {
      SlowRequestEntry entry;
      entry.op = std::string(OpcodeToString(request.opcode));
      entry.latency_us = latency_us;
      entry.status = std::string(StatusCodeToString(status.code()));
      entry.trace_hi = ctx.trace_hi;
      entry.trace_lo = ctx.trace_lo;
      entry.after_deadline = after_deadline;
      entry.unix_us = UnixMicros();
      slow_log_.Record(std::move(entry));
      MH_COUNTER("server.slow_requests.count")->Increment();
    }

    const std::string payload = EncodeResponsePayload(status, result);
    MH_COUNTER("server.bytes.out")->Add(payload.size() + kFrameOverheadBytes);
    const Status written =
        WriteFrame(&sock, request.opcode, payload,
                   Deadline::AfterMs(options_.io_timeout_ms));
    if (!written.ok()) break;
    if (request.opcode == static_cast<uint8_t>(Opcode::kShutdown)) {
      RequestStop();
      break;
    }
  }
}

Status ModelHubServer::Dispatch(const Frame& request, std::string* out) {
  switch (static_cast<Opcode>(request.opcode)) {
    case Opcode::kPing: {
      // The reply leads with the bare "pong" liveness token (old clients
      // key on that) and appends load/lifecycle state so a router can
      // steer away from a draining or backed-up server before requests
      // start failing (ParsePingReply in net/client.h).
      size_t queued;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queued = pending_.size();
      }
      *out = std::string("pong state=") +
             (stopping_.load() ? "draining" : "serving") +
             " queue=" + std::to_string(queued) +
             " active=" + std::to_string(active_connections_.load());
      return Status::OK();
    }
    case Opcode::kListModels:
      return HandleListModels(out);
    case Opcode::kGetSnapshot:
      return HandleGetSnapshot(request, out);
    case Opcode::kDqlQuery:
      return HandleDqlQuery(request, out);
    case Opcode::kStats:
      return HandleStats(out);
    case Opcode::kGetTrace:
      return HandleGetTrace(out);
    case Opcode::kGetMetrics:
      *out = MetricRegistry::Global()->ToPrometheusText();
      return Status::OK();
    case Opcode::kShutdown:
      *out = "draining";
      return Status::OK();
  }
  return Status::InvalidArgument("unknown opcode " +
                                 std::to_string(request.opcode));
}

Status ModelHubServer::HandleListModels(std::string* out) {
  MH_ASSIGN_OR_RETURN(auto versions, repo_->List());
  for (const ModelVersionInfo& info : versions) {
    char row[320];
    std::snprintf(row, sizeof(row), "%s %s %lld %.3f %s\n", info.name.c_str(),
                  info.parent.empty() ? "-" : info.parent.c_str(),
                  static_cast<long long>(info.num_snapshots),
                  info.best_accuracy, info.archived ? "archived" : "staged");
    out->append(row);
  }
  return Status::OK();
}

Status ModelHubServer::HandleGetSnapshot(const Frame& request,
                                         std::string* out) {
  std::string model;
  int64_t sequence = -1;
  int planes = 0;
  MH_RETURN_IF_ERROR(DecodeGetSnapshotRequest(Slice(request.payload), &model,
                                              &sequence, &planes));
  if (sequence < 0) {
    MH_ASSIGN_OR_RETURN(const int64_t count, repo_->NumSnapshots(model));
    if (count == 0) {
      return Status::NotFound("version has no snapshots: " + model);
    }
    sequence = count - 1;
  }
  const std::string key = model + "/s" + std::to_string(sequence);
  // Feed the lifecycle daemon's heat map: every request counts, even
  // ones the coalescer folds into an in-flight retrieval.
  if (maintenance_ != nullptr) {
    maintenance_->access_tracker()->RecordAccess(key);
  }
  MH_ASSIGN_OR_RETURN(auto payload, coalescer_->Fetch(key, planes));
  *out = *payload;
  return Status::OK();
}

Result<std::string> ModelHubServer::FetchSnapshot(const std::string& key,
                                                  int planes) {
  // The key was assembled by HandleGetSnapshot as "<model>/s<sequence>".
  const size_t sep = key.rfind("/s");
  MH_CHECK(sep != std::string::npos);
  const std::string model = key.substr(0, sep);
  const int64_t sequence = std::atoll(key.c_str() + sep + 2);

  // Grab a shared handle to the current reader: the maintenance daemon
  // may swap the cache mid-retrieval, but this handle keeps its
  // generation pinned (chunk files undeletable) until we drop it.
  std::shared_ptr<ArchiveReader> archive = repo_->CachedArchive();
  const auto in_archive = [&key](const std::shared_ptr<ArchiveReader>& a) {
    return a != nullptr &&
           std::find(a->snapshot_names().begin(), a->snapshot_names().end(),
                     key) != a->snapshot_names().end();
  };

  if (planes == 0) {
    if (in_archive(archive)) {
      MH_ASSIGN_OR_RETURN(
          auto sets, archive->RetrieveSnapshotsParallel(
                         {key}, retrieval_pool_.get(), ParallelScheme::kShared));
      return SerializeParams(sets[0]);
    }
    // Staged (or never archived): read through the repository.
    auto params = repo_->GetSnapshotParams(model, sequence);
    if (params.ok()) return SerializeParams(*params);
    // Staging miss: the maintenance daemon (its own Repository instance)
    // may have migrated staged snapshots into a fresh archive generation
    // behind our catalog snapshot. Reload and retry before failing.
    if (auto reloaded = repo_->ReloadArchive();
        reloaded.ok() && in_archive(*reloaded)) {
      (*reloaded)->EnableChunkCache(true);
      MH_ASSIGN_OR_RETURN(
          auto sets, (*reloaded)->RetrieveSnapshotsParallel(
                         {key}, retrieval_pool_.get(), ParallelScheme::kShared));
      return SerializeParams(sets[0]);
    }
    return params.status();
  }

  if (archive == nullptr) {
    return Status::FailedPrecondition(
        "progressive retrieval requires a PAS archive (run dlv archive)");
  }
  MH_ASSIGN_OR_RETURN(auto bounds,
                      archive->RetrieveSnapshotBounds(key, planes));
  std::string text =
      "snapshot " + key + " planes=" + std::to_string(planes) + "\n";
  for (const auto& [name, matrix] : bounds) {
    double sum = 0.0;
    for (int64_t r = 0; r < matrix.rows(); ++r) {
      for (int64_t c = 0; c < matrix.cols(); ++c) {
        sum += matrix.At(r, c).Width();
      }
    }
    const double cells =
        static_cast<double>(matrix.rows()) * static_cast<double>(matrix.cols());
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s %lldx%lld max_width=%.6g mean_width=%.6g\n",
                  name.c_str(), static_cast<long long>(matrix.rows()),
                  static_cast<long long>(matrix.cols()),
                  static_cast<double>(matrix.MaxWidth()),
                  cells > 0 ? sum / cells : 0.0);
    text.append(row);
  }
  return text;
}

Status ModelHubServer::HandleDqlQuery(const Frame& request, std::string* out) {
  // Read-only engine: the serving path never mutates the repository, so
  // concurrent DQL requests need no catalog locking.
  DqlOptions options;
  options.commit_results = false;
  DqlEngine engine(&*repo_, options);
  MH_ASSIGN_OR_RETURN(DqlResult result, engine.Run(request.payload));
  switch (result.kind) {
    case dql::Query::Kind::kSelect:
      out->append(std::to_string(result.model_names.size()) +
                  " model version(s):\n");
      for (const std::string& name : result.model_names) {
        out->append("  " + name + "\n");
      }
      break;
    case dql::Query::Kind::kSlice:
    case dql::Query::Kind::kConstruct:
      out->append(std::to_string(result.networks.size()) +
                  " derived network(s):\n");
      for (const NetworkDef& def : result.networks) {
        out->append("  " + def.name() + " (" +
                    std::to_string(def.nodes().size()) + " nodes)\n");
      }
      break;
    case dql::Query::Kind::kEvaluate:
      out->append(std::to_string(result.evaluated.size()) +
                  " model(s) kept:\n");
      for (const EvaluatedModel& model : result.evaluated) {
        char row[320];
        std::snprintf(row, sizeof(row), "  %s loss=%.4f acc=%.3f\n",
                      model.name.c_str(), model.loss, model.accuracy);
        out->append(row);
      }
      break;
  }
  if (result.analyzed) {
    out->append("\nquery plan (explain analyze):\n" + result.RenderPlan());
  }
  return Status::OK();
}

Status ModelHubServer::HandleStats(std::string* out) {
  UpdateUptimeGauge();
  std::string json = MetricRegistry::Global()->Snapshot().ToJson();
  // Splice the slow-request ring and the MAINTAIN_STATUS surface in as
  // top-level sections next to counters/gauges/histograms.
  json.pop_back();
  json += ",\"slow_requests\":" + slow_log_.ToJson();
  MaintenanceStatus maintain;
  if (maintenance_ != nullptr) maintain = maintenance_->status();
  json += ",\"maintenance\":" + maintain.ToJson() + "}";
  *out = std::move(json);
  return Status::OK();
}

Status ModelHubServer::HandleGetTrace(std::string* out) {
  AppendTraceDump(out, CollectTraceDump("modelhubd@" + options_.host + ":" +
                                        std::to_string(port())));
  return Status::OK();
}

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;

void OnStopSignal(int) { g_stop_signal = 1; }

}  // namespace

int RunServerMain(Env* env, const std::string& repo_root,
                  ServerOptions options) {
  ModelHubServer server(env, repo_root, std::move(options));
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "modelhubd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("modelhubd listening on %s:%d\n", server.options().host.c_str(),
              server.port());
  std::fflush(stdout);
  g_stop_signal = 0;
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  while (g_stop_signal == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "modelhubd: draining\n");
  const Status stopped = server.Stop();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (!stopped.ok()) {
    std::fprintf(stderr, "modelhubd: %s\n", stopped.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace modelhub
