#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace modelhub {

void Dataset::Gather(const std::vector<int64_t>& indices, Tensor* batch,
                     std::vector<int>* batch_labels) const {
  const int64_t c = images.c();
  const int64_t h = images.h();
  const int64_t w = images.w();
  const int64_t sample = images.SampleSize();
  *batch = Tensor(static_cast<int64_t>(indices.size()), c, h, w);
  batch_labels->resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t src = indices[i];
    MH_CHECK(src >= 0 && src < images.n());
    std::copy(images.data().begin() + src * sample,
              images.data().begin() + (src + 1) * sample,
              batch->data().begin() + static_cast<int64_t>(i) * sample);
    (*batch_labels)[i] = labels[static_cast<size_t>(src)];
  }
}

namespace {

/// Draws one stroke into a single-channel image; strokes are selected by
/// the class id bits so every class has a unique visual signature.
void DrawStroke(Tensor* img, int64_t n, int stroke, int64_t size, int dx,
                int dy) {
  auto put = [&](int64_t y, int64_t x) {
    y += dy;
    x += dx;
    if (y >= 0 && y < size && x >= 0 && x < size) {
      img->At(n, 0, y, x) = 1.0f;
    }
  };
  const int64_t mid = size / 2;
  const int64_t lo = size / 5;
  const int64_t hi = size - 1 - lo;
  switch (stroke) {
    case 0:  // Horizontal bar (upper third).
      for (int64_t x = lo; x <= hi; ++x) put(lo, x);
      break;
    case 1:  // Vertical bar (left third).
      for (int64_t y = lo; y <= hi; ++y) put(y, lo);
      break;
    case 2:  // Main diagonal.
      for (int64_t t = lo; t <= hi; ++t) put(t, t);
      break;
    case 3:  // Anti-diagonal.
      for (int64_t t = lo; t <= hi; ++t) put(t, size - 1 - t);
      break;
    case 4:  // Horizontal bar (center).
      for (int64_t x = lo; x <= hi; ++x) put(mid, x);
      break;
    case 5:  // Vertical bar (center).
      for (int64_t y = lo; y <= hi; ++y) put(y, mid);
      break;
    default:
      break;
  }
}

}  // namespace

Dataset MakeGlyphDataset(const GlyphOptions& options) {
  MH_CHECK(options.num_classes >= 2 && options.num_classes <= 64);
  Rng rng(options.seed);
  Dataset ds;
  ds.num_classes = options.num_classes;
  ds.images =
      Tensor(options.num_samples, 1, options.image_size, options.image_size);
  ds.labels.resize(static_cast<size_t>(options.num_samples));
  for (int64_t n = 0; n < options.num_samples; ++n) {
    const int label = static_cast<int>(rng.Uniform(options.num_classes));
    ds.labels[static_cast<size_t>(n)] = label;
    const int jitter = options.max_jitter;
    const int dx = jitter == 0
                       ? 0
                       : static_cast<int>(rng.Uniform(2 * jitter + 1)) - jitter;
    const int dy = jitter == 0
                       ? 0
                       : static_cast<int>(rng.Uniform(2 * jitter + 1)) - jitter;
    // Strokes: one base stroke by class mod 6 plus extra strokes from the
    // higher bits, so class identity needs shape composition, not just one
    // feature.
    DrawStroke(&ds.images, n, label % 6, options.image_size, dx, dy);
    int extra = label / 6;
    int stroke = 0;
    while (extra > 0) {
      if (extra & 1) {
        DrawStroke(&ds.images, n, (stroke + 1) % 6, options.image_size, dx,
                   dy);
      }
      extra >>= 1;
      ++stroke;
    }
    // Pixel noise.
    for (int64_t y = 0; y < options.image_size; ++y) {
      for (int64_t x = 0; x < options.image_size; ++x) {
        float& v = ds.images.At(n, 0, y, x);
        v += static_cast<float>(rng.NextGaussian()) * options.noise_stddev;
        v = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return ds;
}

Dataset MakeBlobDataset(int64_t num_samples, int num_classes,
                        int64_t image_size, float noise_stddev,
                        uint64_t seed) {
  MH_CHECK(num_classes >= 2);
  Rng rng(seed);
  Dataset ds;
  ds.num_classes = num_classes;
  ds.images = Tensor(num_samples, 1, image_size, image_size);
  ds.labels.resize(static_cast<size_t>(num_samples));
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (int64_t n = 0; n < num_samples; ++n) {
    const int label = static_cast<int>(rng.Uniform(num_classes));
    ds.labels[static_cast<size_t>(n)] = label;
    // Class centers on a circle.
    const double angle = two_pi * label / num_classes;
    const double cx = image_size / 2.0 + std::cos(angle) * image_size / 3.5;
    const double cy = image_size / 2.0 + std::sin(angle) * image_size / 3.5;
    const double sigma = image_size / 8.0;
    for (int64_t y = 0; y < image_size; ++y) {
      for (int64_t x = 0; x < image_size; ++x) {
        const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
        float v = static_cast<float>(std::exp(-d2 / (2 * sigma * sigma)));
        v += static_cast<float>(rng.NextGaussian()) * noise_stddev;
        ds.images.At(n, 0, y, x) = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return ds;
}

}  // namespace modelhub
