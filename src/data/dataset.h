#ifndef MODELHUB_DATA_DATASET_H_
#define MODELHUB_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

namespace modelhub {

/// A labeled image classification dataset. Stands in for MNIST / ILSVRC in
/// the paper's experiments (DESIGN.md substitution #2): the evaluation only
/// depends on achieving nontrivial accuracy and realistic trained-weight
/// distributions, which learnable synthetic tasks provide.
struct Dataset {
  Tensor images;            ///< [N, C, H, W], values roughly in [0, 1].
  std::vector<int> labels;  ///< One label in [0, num_classes) per sample.
  int num_classes = 0;

  int64_t size() const { return images.n(); }

  /// Copies the samples at `indices` into a batch tensor + label vector.
  void Gather(const std::vector<int64_t>& indices, Tensor* batch,
              std::vector<int>* batch_labels) const;
};

/// Options for the parametric glyph task: each class is a distinct stroke
/// pattern (bars / diagonals chosen by the bits of the class id), rendered
/// with per-sample jitter and Gaussian pixel noise. Learnable by a small
/// conv net to >90% accuracy, yet not linearly separable at high noise.
struct GlyphOptions {
  int64_t num_samples = 512;
  int num_classes = 10;
  int64_t image_size = 20;
  float noise_stddev = 0.15f;
  int max_jitter = 2;  ///< Uniform translation in [-max_jitter, +max_jitter].
  uint64_t seed = 1;
};

/// Generates a glyph dataset.
Dataset MakeGlyphDataset(const GlyphOptions& options);

/// Gaussian-blob task: class c's samples are isotropic blobs centered at a
/// class-specific location. Nearly linearly separable; used as the "easy"
/// workload and for quick tests.
Dataset MakeBlobDataset(int64_t num_samples, int num_classes,
                        int64_t image_size, float noise_stddev,
                        uint64_t seed);

}  // namespace modelhub

#endif  // MODELHUB_DATA_DATASET_H_
