#include "data/synthetic_modeler.h"

#include <map>
#include <string>

#include "common/macros.h"
#include "data/dataset.h"
#include "nn/trainer.h"
#include "nn/zoo.h"

namespace modelhub {

namespace {

/// Copies every parameter from `source` whose name and shape match into
/// `net` — the fine-tuning initialization (mismatched layers keep their
/// random init, e.g. a re-targeted final layer).
Status WarmStart(Network* net, const std::vector<NamedParam>& source) {
  std::vector<NamedParam> matching;
  const auto current = net->GetParameters();
  for (const auto& param : source) {
    for (const auto& existing : current) {
      if (existing.name == param.name &&
          existing.value.rows() == param.value.rows() &&
          existing.value.cols() == param.value.cols()) {
        matching.push_back(param);
        break;
      }
    }
  }
  return net->SetParameters(matching);
}

std::map<std::string, std::string> HyperparamMap(const TrainOptions& options) {
  return {
      {"base_lr", std::to_string(options.base_learning_rate)},
      {"momentum", std::to_string(options.momentum)},
      {"batch_size", std::to_string(options.batch_size)},
      {"iterations", std::to_string(options.iterations)},
      {"weight_decay", std::to_string(options.weight_decay)},
  };
}

}  // namespace

Result<std::vector<std::string>> RunSyntheticModeler(
    Repository* repo, const ModelerOptions& options) {
  if (options.num_versions < 1) {
    return Status::InvalidArgument("need at least one version");
  }
  Rng rng(options.seed);
  const Dataset dataset = MakeGlyphDataset({
      .num_samples = options.dataset_samples,
      .num_classes = options.num_classes,
      .image_size = options.image_size,
      .seed = options.seed * 7919 + 1,
  });

  std::vector<std::string> names;
  // Remember each committed version's def so mutations can build on it.
  std::vector<NetworkDef> defs;

  for (int v = 0; v < options.num_versions; ++v) {
    const std::string name = "model_v" + std::to_string(v);
    NetworkDef def;
    CommitRequest request;
    TrainOptions train_options;
    train_options.iterations = options.train_iterations;
    train_options.batch_size = 16;
    train_options.snapshot_every =
        options.train_iterations / options.snapshots_per_version;
    train_options.log_every = options.train_iterations / 4;
    train_options.seed = rng.Next();

    std::vector<NamedParam> warm;
    if (v == 0) {
      // Base model, trained from scratch.
      def = MiniVgg(options.num_classes, options.image_size,
                    options.width_multiple);
      train_options.base_learning_rate = 0.1f;
      request.message = "base model";
    } else {
      // Pick a parent and an action, as the paper's state machine does.
      const size_t parent = rng.Uniform(names.size());
      request.parent = names[parent];
      def = defs[parent];
      const uint64_t action = rng.Uniform(3);
      if (action == 0) {
        // Fine-tune: warm start from the parent's latest snapshot, small
        // learning rate. Produces highly similar parameters (Sec. IV-B).
        MH_ASSIGN_OR_RETURN(warm,
                            repo->GetSnapshotParams(request.parent, -1));
        train_options.base_learning_rate = 0.01f;
        request.message = "finetune of " + request.parent;
      } else if (action == 1) {
        // Hyperparameter variation: retrain from scratch with a different
        // learning rate / momentum (uncorrelated parameters).
        train_options.base_learning_rate =
            rng.Bernoulli(0.5) ? 0.05f : 0.2f;
        train_options.momentum = rng.Bernoulli(0.5) ? 0.8f : 0.95f;
        request.message = "hyperparameter variation of " + request.parent;
      } else {
        // Architecture mutation: insert a ReLU after the first pool (if
        // absent) or vary dropout — then warm start where shapes allow.
        const std::string inserted = "relu_extra_v" + std::to_string(v);
        if (def.HasNode("pool1") && !def.HasNode(inserted)) {
          MH_RETURN_IF_ERROR(def.InsertAfter(
              "pool1", MakeActivation(inserted, LayerKind::kReLU)));
        }
        MH_ASSIGN_OR_RETURN(warm,
                            repo->GetSnapshotParams(request.parent, -1));
        train_options.base_learning_rate = 0.02f;
        request.message = "architecture mutation of " + request.parent;
      }
    }
    def.set_name(name);

    MH_ASSIGN_OR_RETURN(Network net, Network::Create(def));
    Rng init_rng(rng.Next());
    net.InitializeWeights(&init_rng);
    if (!warm.empty()) {
      MH_RETURN_IF_ERROR(WarmStart(&net, warm));
    }
    MH_ASSIGN_OR_RETURN(TrainResult trained,
                        TrainNetwork(&net, dataset, train_options));

    request.name = name;
    request.network = def;
    request.snapshots = trained.snapshots;
    request.log = trained.log;
    request.hyperparams = HyperparamMap(train_options);
    request.files = {
        {"train_config.txt",
         "lr=" + std::to_string(train_options.base_learning_rate) +
             "\niters=" + std::to_string(train_options.iterations) + "\n"}};
    MH_RETURN_IF_ERROR(repo->Commit(request).status());
    names.push_back(name);
    defs.push_back(def);
  }
  return names;
}

}  // namespace modelhub
