#ifndef MODELHUB_DATA_SYNTHETIC_MODELER_H_
#define MODELHUB_DATA_SYNTHETIC_MODELER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dlv/repository.h"

namespace modelhub {

/// Knobs for the automatic modeler (the paper's SD/RD generator, Sec. V-A:
/// a state machine that mimics a modeler enumerating models and
/// hyperparameters for a prediction task, fine-tuning a trained base).
struct ModelerOptions {
  /// Total model versions to produce (the paper's SD has 54; scale down
  /// for unit tests, up for benchmarks).
  int num_versions = 8;
  /// Checkpointed snapshots per version (SD uses 10).
  int64_t snapshots_per_version = 4;
  int64_t train_iterations = 60;
  int num_classes = 6;
  int64_t image_size = 16;
  int64_t width_multiple = 1;
  int64_t dataset_samples = 192;
  uint64_t seed = 1;
};

/// Runs the modeler against `repo`: commits a trained base model, then a
/// mix of fine-tuned descendants (similar parameters — good delta
/// candidates), hyperparameter re-trainings, and small architecture
/// mutations (new layers). Every version carries its snapshot series,
/// training log, and hyperparameters. Returns committed version names in
/// creation order.
Result<std::vector<std::string>> RunSyntheticModeler(
    Repository* repo, const ModelerOptions& options);

}  // namespace modelhub

#endif  // MODELHUB_DATA_SYNTHETIC_MODELER_H_
