#ifndef MODELHUB_COMMON_THREAD_POOL_H_
#define MODELHUB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace modelhub {

/// Tracks completion of one batch of tasks on a shared ThreadPool.
///
/// ThreadPool::Wait() barriers on *every* in-flight task, so two callers
/// sharing one pool would block on each other's work. A WaitGroup counts
/// only its own batch: Schedule(&group, task) increments it before the
/// task is enqueued and decrements it when the task returns, and
/// WaitGroup::Wait() blocks until exactly this batch has drained. Tasks
/// may themselves schedule follow-up tasks against the same group (the
/// increment happens before the scheduling task's decrement, so the count
/// never transiently hits zero while work remains).
class WaitGroup {
 public:
  WaitGroup() = default;
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Registers `n` pending completions.
  void Add(int n = 1);

  /// Marks one completion. Must balance a prior Add.
  void Done();

  /// Blocks until the count returns to zero. Reusable: a later Add starts
  /// a new batch.
  void Wait();

 private:
  std::mutex mutex_;
  std::condition_variable zero_;
  int count_ = 0;
};

/// A fixed-size worker pool. PAS's parallel retrieval schemes (Table III:
/// "accesses all matrices of a snapshot in parallel using multiple
/// threads") run per-vertex recreation tasks on this pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Schedule(std::function<void()> task);

  /// Enqueues a task tracked by `group`: the group is incremented before
  /// the task is queued and decremented after it runs (the pool drains
  /// its queue before shutdown, so every queued task runs exactly once).
  /// `group` must outlive the task.
  void Schedule(WaitGroup* group, std::function<void()> task);

  /// Blocks until every scheduled task has finished — including tasks
  /// scheduled by other callers. Prefer per-batch WaitGroups on shared
  /// pools.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_THREAD_POOL_H_
