#ifndef MODELHUB_COMMON_THREAD_POOL_H_
#define MODELHUB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace modelhub {

/// A fixed-size worker pool. PAS's parallel retrieval scheme (Table III:
/// "accesses all matrices of a snapshot in parallel using multiple
/// threads") runs per-matrix recreation on this pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_THREAD_POOL_H_
