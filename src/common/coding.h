#ifndef MODELHUB_COMMON_CODING_H_
#define MODELHUB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace modelhub {

/// Little-endian fixed-width and varint encoding primitives used by the PAS
/// chunk store and the DLV catalog file formats.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// LEB128-style unsigned varint (7 bits per byte, high bit = continuation).
void PutVarint64(std::string* dst, uint64_t value);

/// Length-prefixed (varint) byte string.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Each Get* consumes bytes from the front of `*input` on success.
/// On failure the input position is unspecified and a Corruption status is
/// returned.
Status GetFixed32(Slice* input, uint32_t* value);
Status GetFixed64(Slice* input, uint64_t* value);
Status GetVarint64(Slice* input, uint64_t* value);
Status GetLengthPrefixed(Slice* input, Slice* value);

}  // namespace modelhub

#endif  // MODELHUB_COMMON_CODING_H_
