#ifndef MODELHUB_COMMON_FAULT_ENV_H_
#define MODELHUB_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"

namespace modelhub {

/// An Env wrapper that injects storage faults (the LevelDB
/// FaultInjectionTestEnv pattern). It delegates every call to a target Env
/// and can be armed to fail the k-th mutating operation, tear a write
/// partway, fail reads, or silently flip bits in written payloads.
///
/// Mutating operations (WriteFile, RenameFile, DeleteFile, CreateDirs) are
/// counted; when the armed fault fires the env "crashes": the faulted
/// operation fails and every later mutating operation fails too, modeling
/// a process that died mid-protocol. Reads keep working after the crash so
/// post-mortem recovery code can be exercised against the same tree.
///
/// Torn writes model a non-atomic filesystem caught mid-write: the prefix
/// of the payload lands in the shadow file `path + ".tmp"` (where a
/// tmp-then-rename writer would have been interrupted) while `path` itself
/// keeps its old contents — so the target Env's WriteFile keeps its
/// "atomically replaces" contract and tests still see a real partial-write
/// dropping that recovery must clean up.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* target) : target_(target) {}

  // --- Fault programming -------------------------------------------------

  /// Arms a crash on the k-th (1-based) mutating operation from now.
  void FailNthMutation(int k) {
    fail_at_ = mutations_ + k;
    torn_ = false;
  }

  /// Like FailNthMutation, but if the failing operation is a WriteFile it
  /// first persists `fraction` of the payload to `path + ".tmp"`.
  void TornWriteNthMutation(int k, double fraction = 0.5) {
    fail_at_ = mutations_ + k;
    torn_ = true;
    torn_fraction_ = fraction;
  }

  /// Injects IOError on reads whose path contains `substring` ("" disables).
  void FailReadsMatching(std::string substring) {
    read_fault_substring_ = std::move(substring);
  }

  /// Flips bit `bit` (modulo payload size) of every subsequent WriteFile
  /// whose path contains `substring`; the write itself succeeds. Models
  /// silent media corruption ("" disables).
  void CorruptWritesMatching(std::string substring, uint64_t bit = 0) {
    corrupt_substring_ = std::move(substring);
    corrupt_bit_ = bit;
  }

  /// Disarms all faults and clears the crashed state (the counters keep
  /// running so FailNthMutation composes with prior traffic).
  void Reset() {
    fail_at_ = -1;
    torn_ = false;
    crashed_ = false;
    read_fault_substring_.clear();
    corrupt_substring_.clear();
  }

  int64_t mutations() const { return mutations_; }
  bool crashed() const { return crashed_; }

  // --- Env ---------------------------------------------------------------

  Status WriteFile(const std::string& path,
                   const std::string& contents) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status DeleteDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;

  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) override;
  bool FileExists(const std::string& path) override {
    return target_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return target_->FileSize(path);
  }
  bool DirExists(const std::string& path) override {
    return target_->DirExists(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return target_->ListDir(path);
  }

 private:
  /// Bumps the mutation counter; returns non-OK if this op must fail.
  /// `*fires` is set when this call is the armed one (vs. post-crash).
  Status CheckMutation(const std::string& what, bool* fires);

  Env* target_;
  int64_t mutations_ = 0;
  int64_t fail_at_ = -1;  ///< Mutation ordinal that crashes; -1 disarmed.
  bool torn_ = false;
  double torn_fraction_ = 0.5;
  bool crashed_ = false;
  std::string read_fault_substring_;
  std::string corrupt_substring_;
  uint64_t corrupt_bit_ = 0;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_FAULT_ENV_H_
