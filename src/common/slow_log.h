#ifndef MODELHUB_COMMON_SLOW_LOG_H_
#define MODELHUB_COMMON_SLOW_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace modelhub {

/// One request that crossed the slow threshold (DESIGN.md §13).
struct SlowRequestEntry {
  std::string op;          ///< Wire opcode name, e.g. "GET_SNAPSHOT".
  uint64_t latency_us = 0; ///< Dispatch wall time.
  std::string status;      ///< "ok" or the status code name.
  uint64_t trace_hi = 0;   ///< Originating trace id (0 = untraced).
  uint64_t trace_lo = 0;
  bool after_deadline = false;  ///< Finished past the client's deadline.
  uint64_t unix_us = 0;    ///< Completion wall-clock time.
};

/// Always-on bounded ring of the slowest-path evidence: every request at
/// or above the server's latency threshold lands here regardless of
/// whether tracing was enabled, so a slow pull leaves a trace id to chase
/// even after the span ring wrapped. Dumped via STATS as the
/// "slow_requests" section.
class SlowRequestLog {
 public:
  explicit SlowRequestLog(size_t capacity = 64);

  void Record(SlowRequestEntry entry);

  /// Oldest surviving entry first.
  std::vector<SlowRequestEntry> Snapshot() const;
  /// Entries ever recorded (>= surviving count once wrapped).
  uint64_t total() const;

  /// {"total":N,"entries":[{"op":...,"latency_us":...,"status":...,
  ///  "trace_id":"hex-or-empty","after_deadline":bool,"unix_us":...}]}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<SlowRequestEntry> ring_;  ///< Guarded by mu_.
  size_t next_slot_ = 0;
  uint64_t total_ = 0;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_SLOW_LOG_H_
