#include "common/env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace modelhub {

namespace fs = std::filesystem;

namespace {

/// mmap-backed FileMapping. Holds only the mapping (the fd is closed right
/// after mmap; POSIX keeps the mapping valid) and unmaps on destruction.
class PosixFileMapping : public FileMapping {
 public:
  PosixFileMapping(const char* data, size_t size) {
    data_ = data;
    size_ = size;
  }
  ~PosixFileMapping() override {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
  }
};

/// Filesystem-backed Env. Writes go through a temp file + rename so readers
/// never observe a partially written artifact.
class PosixEnv : public Env {
 public:
  Status WriteFile(const std::string& path,
                   const std::string& contents) override {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("cannot open for write: " + tmp);
    }
    if (!contents.empty() &&
        std::fwrite(contents.data(), 1, contents.size(), f) !=
            contents.size()) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return Status::IOError("short write: " + tmp);
    }
    if (std::fclose(f) != 0) {
      std::remove(tmp.c_str());
      return Status::IOError("close failed: " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      std::remove(tmp.c_str());
      return Status::IOError("rename failed: " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    if (!fs::is_regular_file(from, ec)) {
      return Status::NotFound("no such file: " + from);
    }
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IOError("rename failed: " + from + " -> " + to + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("no such file: " + path);
    std::string out;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err) return Status::IOError("read failed: " + path);
    return out;
  }

  Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("no such file: " + path);
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
      std::fclose(f);
      return Status::IOError("seek failed: " + path);
    }
    std::string out(length, '\0');
    const size_t n = std::fread(out.data(), 1, length, f);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err) return Status::IOError("read failed: " + path);
    out.resize(n);
    return out;
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::is_regular_file(path, ec);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    const uint64_t size = fs::file_size(path, ec);
    if (ec) return Status::NotFound("no such file: " + path);
    return size;
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::NotFound("cannot delete: " + path);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir failed: " + path);
    return Status::OK();
  }

  bool DirExists(const std::string& path) override {
    std::error_code ec;
    return fs::is_directory(path, ec);
  }

  Status DeleteDir(const std::string& path) override {
    std::error_code ec;
    if (!fs::is_directory(path, ec)) {
      return Status::NotFound("no such directory: " + path);
    }
    // fs::remove only deletes empty directories — exactly the contract.
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("cannot remove directory: " + path +
                             (ec ? ": " + ec.message() : ""));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    fs::directory_iterator it(path, ec);
    if (ec) return Status::NotFound("no such directory: " + path);
    std::vector<std::string> names;
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Result<std::unique_ptr<FileMapping>> MapFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::NotFound("no such file: " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      return Status::IOError("cannot stat for mmap: " + path);
    }
    if (st.st_size == 0) {
      // mmap of length 0 is invalid; callers fall back to ranged reads.
      ::close(fd);
      return Status::Unimplemented("empty file cannot be mapped: " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
      return Status::IOError("mmap failed: " + path);
    }
    return std::unique_ptr<FileMapping>(
        new PosixFileMapping(static_cast<const char*>(addr), size));
  }
};

}  // namespace

Result<std::unique_ptr<FileMapping>> Env::MapFile(const std::string& path) {
  return Status::Unimplemented("MapFile not supported by this Env: " + path);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // Intentionally leaked singleton.
  return env;
}

std::vector<std::pair<std::string, MemEnv::Node>>::iterator MemEnv::Find(
    const std::string& path) {
  return std::find_if(files_.begin(), files_.end(),
                      [&](const auto& kv) { return kv.first == path; });
}

Status MemEnv::WriteFile(const std::string& path,
                         const std::string& contents) {
  auto it = Find(path);
  if (it != files_.end()) {
    if (it->second.is_dir) {
      return Status::IOError("is a directory: " + path);
    }
    it->second.contents = contents;
  } else {
    files_.push_back({path, Node{false, contents}});
  }
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  auto src = Find(from);
  if (src == files_.end() || src->second.is_dir) {
    return Status::NotFound("no such file: " + from);
  }
  auto dst = Find(to);
  if (dst != files_.end() && dst->second.is_dir) {
    return Status::IOError("is a directory: " + to);
  }
  // Replace-or-create the target, then drop the source, so the whole
  // rename is observed atomically (nothing between can fail).
  std::string contents = std::move(src->second.contents);
  if (dst != files_.end()) {
    dst->second.contents = std::move(contents);
    files_.erase(Find(from));
  } else {
    src->second.contents.clear();
    files_.push_back({to, Node{false, std::move(contents)}});
    files_.erase(Find(from));
  }
  return Status::OK();
}

Result<std::string> MemEnv::ReadFile(const std::string& path) {
  auto it = Find(path);
  if (it == files_.end() || it->second.is_dir) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second.contents;
}

Result<std::string> MemEnv::ReadFileRange(const std::string& path,
                                          uint64_t offset, uint64_t length) {
  auto it = Find(path);
  if (it == files_.end() || it->second.is_dir) {
    return Status::NotFound("no such file: " + path);
  }
  const std::string& c = it->second.contents;
  if (offset >= c.size()) return std::string();
  return c.substr(static_cast<size_t>(offset), static_cast<size_t>(length));
}

bool MemEnv::FileExists(const std::string& path) {
  auto it = Find(path);
  return it != files_.end() && !it->second.is_dir;
}

Result<uint64_t> MemEnv::FileSize(const std::string& path) {
  auto it = Find(path);
  if (it == files_.end() || it->second.is_dir) {
    return Status::NotFound("no such file: " + path);
  }
  return static_cast<uint64_t>(it->second.contents.size());
}

Status MemEnv::DeleteFile(const std::string& path) {
  auto it = Find(path);
  if (it == files_.end() || it->second.is_dir) {
    return Status::NotFound("cannot delete: " + path);
  }
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDirs(const std::string& path) {
  // Record each prefix directory.
  std::string prefix;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    std::string part = (slash == std::string::npos)
                           ? path.substr(start)
                           : path.substr(start, slash - start);
    if (!part.empty()) {
      prefix = prefix.empty() ? part : prefix + "/" + part;
      if (path[0] == '/' && prefix[0] != '/') prefix = "/" + prefix;
      auto it = Find(prefix);
      if (it == files_.end()) {
        files_.push_back({prefix, Node{true, ""}});
      } else if (!it->second.is_dir) {
        return Status::IOError("not a directory: " + prefix);
      }
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return Status::OK();
}

bool MemEnv::DirExists(const std::string& path) {
  auto it = Find(path);
  return it != files_.end() && it->second.is_dir;
}

Status MemEnv::DeleteDir(const std::string& path) {
  auto it = Find(path);
  if (it == files_.end() || !it->second.is_dir) {
    return Status::NotFound("no such directory: " + path);
  }
  const std::string prefix = path + "/";
  for (const auto& [p, node] : files_) {
    if (p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0) {
      return Status::IOError("directory not empty: " + path);
    }
  }
  files_.erase(Find(path));
  return Status::OK();
}

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& path) {
  if (!DirExists(path)) return Status::NotFound("no such directory: " + path);
  std::vector<std::string> names;
  const std::string prefix = path + "/";
  for (const auto& [p, node] : files_) {
    if (p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0 &&
        p.find('/', prefix.size()) == std::string::npos) {
      names.push_back(p.substr(prefix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

Status RemoveTree(Env* env, const std::string& path) {
  if (env->DirExists(path)) {
    auto names = env->ListDir(path);
    if (!names.ok()) return names.status();
    for (const std::string& name : *names) {
      Status removed = RemoveTree(env, JoinPath(path, name));
      if (!removed.ok()) return removed;
    }
    return env->DeleteDir(path);
  }
  if (env->FileExists(path)) return env->DeleteFile(path);
  return Status::OK();  // Already gone.
}

}  // namespace modelhub
