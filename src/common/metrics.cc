#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <functional>

namespace modelhub {

namespace {

/// Escape a metric name for embedding as a JSON string. Names are dotted
/// ASCII identifiers by convention, but the exporter must not emit broken
/// JSON if someone registers something exotic.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendUint(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile sample, 1-based; p=0 maps to the first sample.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(p / 100.0 *
                                                  static_cast<double>(count)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketUpperBound(static_cast<int>(i));
  }
  return Histogram::BucketUpperBound(static_cast<int>(buckets.size()) - 1);
}

int Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  // bit_width(v) = floor(log2(v)) + 1, so values in [2^(i-1), 2^i) land in
  // bucket i; everything past the last exact bucket collapses into it.
  const int index = std::bit_width(value);
  return index >= kNumBuckets ? kNumBuckets - 1 : index;
}

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= kNumBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void Histogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& v : values) {
    if (v.kind != MetricValue::Kind::kCounter) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, v.name);
    out.push_back(':');
    AppendUint(&out, v.counter);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& v : values) {
    if (v.kind != MetricValue::Kind::kGauge) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, v.name);
    out.push_back(':');
    out.append(std::to_string(v.gauge));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& v : values) {
    if (v.kind != MetricValue::Kind::kHistogram) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, v.name);
    out += ":{\"count\":";
    AppendUint(&out, v.histogram.count);
    out += ",\"sum\":";
    AppendUint(&out, v.histogram.sum);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"mean\":%.3f", v.histogram.Mean());
    out += buf;
    out += ",\"p50\":";
    AppendUint(&out, v.histogram.ApproxPercentile(50));
    out += ",\"p99\":";
    AppendUint(&out, v.histogram.ApproxPercentile(99));
    // Trim trailing empty buckets so sparse histograms stay compact.
    size_t last = v.histogram.buckets.size();
    while (last > 0 && v.histogram.buckets[last - 1] == 0) --last;
    out += ",\"buckets\":[";
    for (size_t i = 0; i < last; ++i) {
      if (i > 0) out.push_back(',');
      AppendUint(&out, v.histogram.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& v : values) {
    char line[256];
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        std::snprintf(line, sizeof(line), "%-44s %20llu\n", v.name.c_str(),
                      static_cast<unsigned long long>(v.counter));
        break;
      case MetricValue::Kind::kGauge:
        std::snprintf(line, sizeof(line), "%-44s %20lld\n", v.name.c_str(),
                      static_cast<long long>(v.gauge));
        break;
      case MetricValue::Kind::kHistogram:
        std::snprintf(line, sizeof(line),
                      "%-44s count=%llu mean=%.1f p50<=%llu p99<=%llu\n",
                      v.name.c_str(),
                      static_cast<unsigned long long>(v.histogram.count),
                      v.histogram.Mean(),
                      static_cast<unsigned long long>(
                          v.histogram.ApproxPercentile(50)),
                      static_cast<unsigned long long>(
                          v.histogram.ApproxPercentile(99)));
        break;
    }
    out += line;
  }
  return out;
}

namespace {

/// Dotted metric names become Prometheus metric names: every character
/// outside [a-zA-Z0-9_:] maps to '_', with a '_' prepended if the result
/// would start with a digit.
std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& v : values) {
    const std::string name = PrometheusName(v.name);
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(v.counter) + "\n";
        break;
      case MetricValue::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(v.gauge) + "\n";
        break;
      case MetricValue::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        // Pow2 buckets render cumulatively: le is each bucket's inclusive
        // upper bound (0, 1, 3, 7, ...). Trailing empty buckets collapse
        // into +Inf; the explicit overflow bucket is +Inf itself.
        size_t last = v.histogram.buckets.size();
        while (last > 0 && v.histogram.buckets[last - 1] == 0) --last;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < last; ++i) {
          cumulative += v.histogram.buckets[i];
          const uint64_t bound =
              Histogram::BucketUpperBound(static_cast<int>(i));
          if (bound == UINT64_MAX) continue;  // folded into +Inf below
          out += name + "_bucket{le=\"" + std::to_string(bound) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(v.histogram.count) + "\n";
        out += name + "_sum " + std::to_string(v.histogram.sum) + "\n";
        out += name + "_count " + std::to_string(v.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

void AppendPrometheusWithLabel(std::string* out, std::string_view text,
                               std::string_view label,
                               std::set<std::string>* seen_types) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      // One TYPE declaration per metric across the whole fleet scrape.
      const std::string_view rest = line.substr(7);
      const size_t space = rest.find(' ');
      const std::string metric(rest.substr(0, space));
      if (seen_types != nullptr && !seen_types->insert(metric).second) {
        continue;
      }
      out->append(line);
      out->push_back('\n');
      continue;
    }
    if (line[0] == '#') {
      out->append(line);
      out->push_back('\n');
      continue;
    }
    // Sample line: inject the label into the (possibly absent) label set.
    const size_t brace = line.find('{');
    if (brace != std::string_view::npos) {
      out->append(line.substr(0, brace + 1));
      out->append(label);
      out->push_back(',');
      out->append(line.substr(brace + 1));
    } else {
      const size_t space = line.find(' ');
      if (space == std::string_view::npos) {
        out->append(line);  // malformed; pass through untouched
      } else {
        out->append(line.substr(0, space));
        out->push_back('{');
        out->append(label);
        out->push_back('}');
        out->append(line.substr(space));
      }
    }
    out->push_back('\n');
  }
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

MetricRegistry* MetricRegistry::Global() {
  // Leaked singleton: instrument pointers must outlive every static
  // destructor that might still record.
  static MetricRegistry* registry = new MetricRegistry();
  return registry;
}

MetricRegistry::Stripe& MetricRegistry::StripeFor(std::string_view name) {
  return stripes_[std::hash<std::string_view>{}(name) % kStripes];
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.counters.find(name);
  if (it == stripe.counters.end()) {
    it = stripe.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.gauges.find(name);
  if (it == stripe.gauges.end()) {
    it = stripe.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.histograms.find(name);
  if (it == stripe.histograms.end()) {
    it = stripe.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [name, counter] : stripe.counters) {
      MetricValue v;
      v.name = name;
      v.kind = MetricValue::Kind::kCounter;
      v.counter = counter->value();
      snapshot.values.push_back(std::move(v));
    }
    for (const auto& [name, gauge] : stripe.gauges) {
      MetricValue v;
      v.name = name;
      v.kind = MetricValue::Kind::kGauge;
      v.gauge = gauge->value();
      snapshot.values.push_back(std::move(v));
    }
    for (const auto& [name, histogram] : stripe.histograms) {
      MetricValue v;
      v.name = name;
      v.kind = MetricValue::Kind::kHistogram;
      v.histogram = histogram->Snapshot();
      snapshot.values.push_back(std::move(v));
    }
  }
  std::sort(snapshot.values.begin(), snapshot.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.kind < b.kind;
            });
  return snapshot;
}

void MetricRegistry::ResetAllForTest() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto& [name, counter] : stripe.counters) counter->Reset();
    for (auto& [name, gauge] : stripe.gauges) gauge->Set(0);
    for (auto& [name, histogram] : stripe.histograms) histogram->Reset();
  }
}

}  // namespace modelhub
