#include "common/fault_env.h"

namespace modelhub {

Status FaultInjectionEnv::CheckMutation(const std::string& what, bool* fires) {
  ++mutations_;
  *fires = false;
  if (crashed_) {
    return Status::IOError("injected crash: env is down (" + what + ")");
  }
  if (fail_at_ >= 0 && mutations_ >= fail_at_) {
    crashed_ = true;
    *fires = true;
    return Status::IOError("injected fault at mutation " +
                           std::to_string(mutations_) + " (" + what + ")");
  }
  return Status::OK();
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    const std::string& contents) {
  bool fires = false;
  Status fault = CheckMutation("write " + path, &fires);
  if (!fault.ok()) {
    if (fires && torn_) {
      // A torn write: the interrupted writer leaves a prefix of the payload
      // in its shadow tmp file; `path` itself is never partially replaced.
      const size_t keep =
          static_cast<size_t>(static_cast<double>(contents.size()) *
                              torn_fraction_);
      (void)target_->WriteFile(path + ".tmp", contents.substr(0, keep));
    }
    return fault;
  }
  if (!corrupt_substring_.empty() &&
      path.find(corrupt_substring_) != std::string::npos &&
      !contents.empty()) {
    std::string flipped = contents;
    const uint64_t bit = corrupt_bit_ % (flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    return target_->WriteFile(path, flipped);
  }
  return target_->WriteFile(path, contents);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool fires = false;
  // Rename is atomic: when the fault fires nothing moves.
  Status fault = CheckMutation("rename " + from, &fires);
  if (!fault.ok()) return fault;
  return target_->RenameFile(from, to);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  bool fires = false;
  Status fault = CheckMutation("delete " + path, &fires);
  if (!fault.ok()) return fault;
  return target_->DeleteFile(path);
}

Status FaultInjectionEnv::DeleteDir(const std::string& path) {
  bool fires = false;
  Status fault = CheckMutation("rmdir " + path, &fires);
  if (!fault.ok()) return fault;
  return target_->DeleteDir(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  bool fires = false;
  Status fault = CheckMutation("mkdir " + path, &fires);
  if (!fault.ok()) return fault;
  return target_->CreateDirs(path);
}

Result<std::string> FaultInjectionEnv::ReadFile(const std::string& path) {
  if (!read_fault_substring_.empty() &&
      path.find(read_fault_substring_) != std::string::npos) {
    return Status::IOError("injected read fault: " + path);
  }
  return target_->ReadFile(path);
}

Result<std::string> FaultInjectionEnv::ReadFileRange(const std::string& path,
                                                     uint64_t offset,
                                                     uint64_t length) {
  if (!read_fault_substring_.empty() &&
      path.find(read_fault_substring_) != std::string::npos) {
    return Status::IOError("injected read fault: " + path);
  }
  return target_->ReadFileRange(path, offset, length);
}

}  // namespace modelhub
