#include "common/coding.h"

namespace modelhub {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xFF);
  buf[1] = static_cast<char>((value >> 8) & 0xFF);
  buf[2] = static_cast<char>((value >> 16) & 0xFF);
  buf[3] = static_cast<char>((value >> 24) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  PutFixed32(dst, static_cast<uint32_t>(value & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(value >> 32));
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(reinterpret_cast<const char*>(value.data()), value.size());
}

Status GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) {
    return Status::Corruption("GetFixed32: input too short");
  }
  const uint8_t* p = input->data();
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  input->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* value) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  Status s = GetFixed32(input, &lo);
  if (!s.ok()) return s;
  s = GetFixed32(input, &hi);
  if (!s.ok()) return s;
  *value = (static_cast<uint64_t>(hi) << 32) | lo;
  return Status::OK();
}

Status GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = (*input)[0];
    input->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("GetVarint64: truncated or overlong varint");
}

Status GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len = 0;
  Status s = GetVarint64(input, &len);
  if (!s.ok()) return s;
  if (input->size() < len) {
    return Status::Corruption("GetLengthPrefixed: input too short");
  }
  *value = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return Status::OK();
}

}  // namespace modelhub
