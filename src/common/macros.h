#ifndef MODELHUB_COMMON_MACROS_H_
#define MODELHUB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Propagates a non-OK Status from the current function.
#define MH_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::modelhub::Status _mh_status = (expr);      \
    if (!_mh_status.ok()) return _mh_status;     \
  } while (false)

#define MH_CONCAT_IMPL(x, y) x##y
#define MH_CONCAT(x, y) MH_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define MH_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto MH_CONCAT(_mh_result_, __LINE__) = (rexpr);                  \
  if (!MH_CONCAT(_mh_result_, __LINE__).ok()) {                     \
    return MH_CONCAT(_mh_result_, __LINE__).status();               \
  }                                                                 \
  lhs = MH_CONCAT(_mh_result_, __LINE__).MoveValue()

/// Fatal invariant check. Used for programmer errors only, never for
/// user-input validation (which must return Status).
#define MH_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MH_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // MODELHUB_COMMON_MACROS_H_
