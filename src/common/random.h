#ifndef MODELHUB_COMMON_RANDOM_H_
#define MODELHUB_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace modelhub {

/// Deterministic 64-bit RNG (xorshift128+). Every stochastic component in
/// ModelHub (weight init, synthetic data, random quantization) takes an
/// explicit Rng so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 to spread the seed across both words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-12) u1 = 1e-12;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_RANDOM_H_
