#ifndef MODELHUB_COMMON_TRACE_H_
#define MODELHUB_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace modelhub {

/// Hierarchical tracing (DESIGN.md §8, §13). A `TraceSpan` is an RAII scope
/// that, when recording is enabled, captures {name, start, duration,
/// parent span, thread, annotations} into a process-wide bounded ring
/// buffer. Nesting is tracked with a thread-local current-span id, so
/// spans opened on a worker thread parent correctly within that thread
/// (ThreadPool::Schedule hands the scheduler's trace context to the
/// worker, so spans recorded on pool threads keep the originating
/// request's trace id).
///
/// Recording is off by default; a disabled TraceSpan costs one relaxed
/// atomic load, one thread-local read, and nothing else.

/// The distributed-tracing context of the current thread (DESIGN.md §13).
/// A request that arrives with a trace-context wire header installs one
/// for the duration of its dispatch; every span recorded under it carries
/// the 128-bit trace id, roots adopt the remote caller's span id as their
/// parent, and outbound client calls re-emit the context on the wire.
struct TraceContext {
  uint64_t trace_hi = 0;  ///< 128-bit trace id, high word.
  uint64_t trace_lo = 0;  ///< 128-bit trace id, low word.
  /// The caller's span id: local roots parent to it so a merged fleet
  /// trace chains client -> router -> backend spans.
  uint64_t parent_span = 0;
  /// Sampling decision, made once at the edge and relayed verbatim: true
  /// records spans for this request even if the recorder is globally
  /// disabled, false suppresses them even if it is enabled.
  bool sampled = false;
  /// Client deadline (absolute, this process's steady clock). Spans that
  /// close past it are annotated after_deadline=true — wasted work made
  /// visible.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// A zero trace id means "no context" — the thread-local default.
  bool active() const { return (trace_hi | trace_lo) != 0; }
  bool deadline_expired() const {
    return has_deadline && std::chrono::steady_clock::now() > deadline;
  }
  /// Milliseconds until the deadline, 0 when expired or absent.
  uint64_t deadline_remaining_ms() const;
  /// 32 lowercase hex chars, or "" when inactive.
  std::string TraceIdHex() const;
};

/// The calling thread's current context (inactive by default).
const TraceContext& CurrentTraceContext();
void SetCurrentTraceContext(const TraceContext& context);
/// The calling thread's innermost open span id (0 = none).
uint64_t CurrentSpanId();

/// RAII install/restore of the thread's trace context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

/// A fresh sampled context with a random non-zero 128-bit trace id — what
/// `dlv rpc --trace` installs at the edge of a traced request.
TraceContext MakeSampledTraceContext();

/// A completed span as stored in the ring buffer.
struct TraceEvent {
  uint64_t id = 0;         ///< Unique per process, randomized base.
  uint64_t parent_id = 0;  ///< 0 for roots (may be a remote span id).
  std::string name;
  uint64_t start_us = 0;     ///< Microseconds since recorder creation.
  uint64_t duration_us = 0;  ///< Span wall time in microseconds.
  uint64_t thread_id = 0;    ///< Stable small id per recording thread.
  uint64_t trace_hi = 0;     ///< Owning trace id (0 = untraced span).
  uint64_t trace_lo = 0;
  /// Key/value annotations attached via TraceSpan::Annotate.
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Bounded in-memory span sink. Spans past `capacity` overwrite the
/// oldest (ring semantics); `dropped_spans` counts the overwritten ones
/// and every overwrite bumps the `trace.dropped_events` counter so
/// truncated traces are detectable from `dlv stats`.
class TraceRecorder {
 public:
  static TraceRecorder* Global();

  /// Toggle recording. Enabling does not clear prior spans; use Clear().
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Resize the ring (drops all recorded spans). Minimum capacity 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Clear();

  /// Spans recorded in completion order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;
  /// Total spans ever recorded and how many were overwritten by ring wrap.
  uint64_t total_spans() const;
  uint64_t dropped_spans() const;

  /// Wall-clock microseconds (unix epoch) of the recorder's steady-clock
  /// origin: `origin_unix_us() + event.start_us` anchors a span on the
  /// shared wall-clock timeline when merging dumps across processes.
  uint64_t origin_unix_us() const { return origin_unix_us_; }

  /// {"spans":[{id,parent,name,start_us,dur_us,tid,args:{...}}...],
  ///  "total":N,"dropped":M}
  std::string ToJson() const;
  /// chrome://tracing / Perfetto-compatible trace_event JSON array of
  /// complete ("ph":"X") events (single-process view, pid fixed at 1;
  /// MergeTraceDumps renders the cross-process view).
  std::string ToChromeTraceJson() const;

  // Internals used by TraceSpan.
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t NowMicros() const;
  void Record(TraceEvent event);

 private:
  TraceRecorder();

  static constexpr size_t kDefaultCapacity = 4096;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  std::chrono::steady_clock::time_point origin_;
  uint64_t origin_unix_us_ = 0;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< Guarded by mu_.
  size_t capacity_ = kDefaultCapacity;
  size_t next_slot_ = 0;     ///< Ring write cursor.
  uint64_t total_ = 0;       ///< Spans ever recorded.
  uint64_t next_thread_ = 0; ///< Next small thread id to hand out.
};

/// RAII span. Construct to open, destruct to close+record. Movable is not
/// needed — spans are stack-scoped by design.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key/value pair (no-op when recording was off at open).
  void Annotate(const char* key, std::string value);
  void Annotate(const char* key, uint64_t value) {
    Annotate(key, std::to_string(value));
  }

  bool recording() const { return recording_; }

 private:
  bool recording_ = false;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t previous_current_ = 0;  ///< tls_current_span to restore.
  uint64_t start_us_ = 0;
  uint64_t trace_hi_ = 0;
  uint64_t trace_lo_ = 0;
  const char* name_ = nullptr;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

/// One process's span buffer plus the identity needed to merge it with
/// other processes' buffers: the GET_TRACE payload (DESIGN.md §13).
struct TraceNodeDump {
  std::string node;           ///< Human label, e.g. "modelhubd@host:port".
  uint64_t pid = 0;           ///< OS pid — the merged trace's pid axis.
  uint64_t origin_unix_us = 0;
  uint64_t total = 0;
  uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// This process's recorder contents as a dump labelled `node`.
TraceNodeDump CollectTraceDump(std::string node);

/// Appends one length-delimited node section to `out`. Sections are
/// self-delimiting, so a router merges fleets by concatenating its own
/// section with each backend's GET_TRACE response verbatim.
void AppendTraceDump(std::string* out, const TraceNodeDump& dump);

/// Parses every concatenated node section from `in`.
Status ParseTraceDumps(Slice in, std::vector<TraceNodeDump>* out);

/// Renders dumps from many processes as one Chrome-trace/Perfetto JSON
/// array: one pid per node (with process_name metadata), spans anchored
/// on the wall clock via origin_unix_us, trace/span ids in args, and a
/// synthetic "wire.gap" span wherever a span's parent lives in a
/// different process (the client->server hop latency made visible).
std::string MergeTraceDumps(const std::vector<TraceNodeDump>& dumps);

}  // namespace modelhub

#endif  // MODELHUB_COMMON_TRACE_H_
