#ifndef MODELHUB_COMMON_TRACE_H_
#define MODELHUB_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace modelhub {

/// Hierarchical tracing (DESIGN.md §8). A `TraceSpan` is an RAII scope
/// that, when recording is enabled, captures {name, start, duration,
/// parent span, thread, annotations} into a process-wide bounded ring
/// buffer. Nesting is tracked with a thread-local current-span id, so
/// spans opened on a worker thread parent correctly within that thread
/// (cross-thread handoff keeps the forest disjoint by design — each
/// worker's spans form their own subtree).
///
/// Recording is off by default; a disabled TraceSpan costs one relaxed
/// atomic load and nothing else.

/// A completed span as stored in the ring buffer.
struct TraceEvent {
  uint64_t id = 0;         ///< Unique per process, 1-based.
  uint64_t parent_id = 0;  ///< 0 for roots.
  std::string name;
  uint64_t start_us = 0;     ///< Microseconds since recorder creation.
  uint64_t duration_us = 0;  ///< Span wall time in microseconds.
  uint64_t thread_id = 0;    ///< Stable small id per recording thread.
  /// Key/value annotations attached via TraceSpan::Annotate.
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Bounded in-memory span sink. Spans past `capacity` overwrite the
/// oldest (ring semantics); `dropped_spans` counts the overwritten ones.
class TraceRecorder {
 public:
  static TraceRecorder* Global();

  /// Toggle recording. Enabling does not clear prior spans; use Clear().
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Resize the ring (drops all recorded spans). Minimum capacity 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Clear();

  /// Spans recorded in completion order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;
  /// Total spans ever recorded and how many were overwritten by ring wrap.
  uint64_t total_spans() const;
  uint64_t dropped_spans() const;

  /// {"spans":[{id,parent,name,start_us,dur_us,tid,args:{...}}...],
  ///  "total":N,"dropped":M}
  std::string ToJson() const;
  /// chrome://tracing / Perfetto-compatible trace_event JSON array of
  /// complete ("ph":"X") events.
  std::string ToChromeTraceJson() const;

  // Internals used by TraceSpan.
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t NowMicros() const;
  void Record(TraceEvent event);

 private:
  TraceRecorder();

  static constexpr size_t kDefaultCapacity = 4096;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  ///< Guarded by mu_.
  size_t capacity_ = kDefaultCapacity;
  size_t next_slot_ = 0;     ///< Ring write cursor.
  uint64_t total_ = 0;       ///< Spans ever recorded.
  uint64_t next_thread_ = 0; ///< Next small thread id to hand out.
};

/// RAII span. Construct to open, destruct to close+record. Movable is not
/// needed — spans are stack-scoped by design.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key/value pair (no-op when recording was off at open).
  void Annotate(const char* key, std::string value);
  void Annotate(const char* key, uint64_t value) {
    Annotate(key, std::to_string(value));
  }

  bool recording() const { return recording_; }

 private:
  bool recording_ = false;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_us_ = 0;
  const char* name_ = nullptr;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_TRACE_H_
