#ifndef MODELHUB_COMMON_CRC32_H_
#define MODELHUB_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace modelhub {

/// Computes the CRC-32 (IEEE 802.3 polynomial, reflected) of `data`,
/// continuing from `seed` (pass 0 for a fresh checksum). Chunk-store pages
/// carry this checksum so corruption is detected on read.
uint32_t Crc32(Slice data, uint32_t seed = 0);

}  // namespace modelhub

#endif  // MODELHUB_COMMON_CRC32_H_
