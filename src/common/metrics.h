#ifndef MODELHUB_COMMON_METRICS_H_
#define MODELHUB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace modelhub {

/// Process-wide metrics substrate (DESIGN.md §8). Three instrument kinds —
/// monotonic counters, gauges, and power-of-two-bucket latency/size
/// histograms — live in a lock-striped registry keyed by dotted name
/// (`pas.chunk.fetch.count`, `dlv.commit.us`, `dql.op.scan.rows`, ...).
///
/// Cost model: instruments are plain relaxed atomics, so a hot-path update
/// is one uncontended atomic RMW and registration (the only locking path)
/// happens once per call site via MH_COUNTER/MH_HISTOGRAM's function-local
/// static. Instrument pointers are stable for the life of the process.

/// Monotonic counter. Updates are relaxed atomics: totals are exact, but
/// cross-counter snapshots are only quiescently consistent.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Benches and per-call deltas reset; production counters never do.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (cache residency, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Read-only copy of a histogram's state, mergeable across histograms
/// (e.g. per-thread or per-store shards summed for display).
struct HistogramSnapshot {
  /// buckets[0] counts value 0; buckets[i] (i >= 1) counts values in
  /// [2^(i-1), 2^i); the last bucket also absorbs everything at or above
  /// 2^(kNumBuckets-2) (the overflow bucket).
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Element-wise accumulate of `other` into this snapshot.
  void Merge(const HistogramSnapshot& other);

  /// Upper bound of the bucket containing the p-th percentile (p in
  /// [0,100]); 0 when empty. Power-of-two buckets make this exact to a
  /// factor of 2 — enough to spot latency regressions.
  uint64_t ApproxPercentile(double p) const;

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) /
                                                      static_cast<double>(count); }
};

/// Lock-free power-of-two-bucket histogram for latencies (us) and sizes
/// (bytes). Range: exact buckets up to 2^38 (~274 G), overflow above.
class Histogram {
 public:
  /// buckets: {0}, [1,2), [2,4), ..., [2^38, inf) → 41 buckets.
  static constexpr int kNumBuckets = 41;

  /// Bucket index for `value` (exposed for tests).
  static int BucketOf(uint64_t value);
  /// Inclusive upper bound of bucket `i` (UINT64_MAX for the overflow
  /// bucket), for rendering.
  static uint64_t BucketUpperBound(int i);

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Zeroes every bucket (tests/benches only; concurrent Records may land
  /// on either side of the reset).
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One named instrument's value at snapshot time.
struct MetricValue {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot histogram;
};

/// Sorted-by-name snapshot of every registered instrument.
struct MetricsSnapshot {
  std::vector<MetricValue> values;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// mean,p50,p99,buckets:[...]}}} — the `dlv stats --json` payload.
  std::string ToJson() const;
  /// Fixed-width text table for the human `dlv stats` output.
  std::string ToText() const;
  /// Prometheus text exposition format (DESIGN.md §13): dotted names
  /// become underscore names with a `# TYPE` line each; pow2 histogram
  /// buckets render as cumulative `le` buckets plus `_sum`/`_count`.
  std::string ToPrometheusText() const;
  /// First value with `name`, or nullptr.
  const MetricValue* Find(std::string_view name) const;
};

/// Appends `text` (one node's Prometheus exposition) to `out`, injecting
/// `label` (e.g. `node="host:port"`) into every sample line and dropping
/// `# TYPE` lines whose metric was already typed in `*seen_types` — how
/// the router folds N per-node expositions into one fleet scrape.
void AppendPrometheusWithLabel(std::string* out, std::string_view text,
                               std::string_view label,
                               std::set<std::string>* seen_types);

/// The process-wide instrument registry. Registration is lock-striped by
/// name hash; instruments themselves are wait-free atomics. Get* returns
/// a stable pointer, creating the instrument on first use; asking for an
/// existing name with a different kind returns a distinct instrument of
/// the requested kind (names are per-kind namespaces).
class MetricRegistry {
 public:
  static MetricRegistry* Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Point-in-time copy of every instrument, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Snapshot().ToPrometheusText() — the GET_METRICS payload.
  std::string ToPrometheusText() const { return Snapshot().ToPrometheusText(); }

  /// Zeroes every registered instrument (pointers stay valid). Tests and
  /// benches use this to measure one scripted section in isolation.
  void ResetAllForTest();

 private:
  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  };
  Stripe& StripeFor(std::string_view name);

  Stripe stripes_[kStripes];
};

/// Cached-lookup helpers for hot paths: the registry is consulted once per
/// call site (thread-safe function-local static), afterwards the cost is
/// one relaxed atomic op. `name` must be a string literal (or otherwise
/// have static storage duration).
#define MH_COUNTER(name)                                              \
  ([]() -> ::modelhub::Counter* {                                     \
    static ::modelhub::Counter* instrument =                          \
        ::modelhub::MetricRegistry::Global()->GetCounter(name);       \
    return instrument;                                                \
  }())
#define MH_GAUGE(name)                                                \
  ([]() -> ::modelhub::Gauge* {                                       \
    static ::modelhub::Gauge* instrument =                            \
        ::modelhub::MetricRegistry::Global()->GetGauge(name);         \
    return instrument;                                                \
  }())
#define MH_HISTOGRAM(name)                                            \
  ([]() -> ::modelhub::Histogram* {                                   \
    static ::modelhub::Histogram* instrument =                        \
        ::modelhub::MetricRegistry::Global()->GetHistogram(name);     \
    return instrument;                                                \
  }())

}  // namespace modelhub

#endif  // MODELHUB_COMMON_METRICS_H_
