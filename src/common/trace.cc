#include "common/trace.h"

#include <algorithm>
#include <cstdio>

namespace modelhub {

namespace {

/// Current open span on this thread (0 = none); children parent to it.
thread_local uint64_t tls_current_span = 0;

/// Small stable per-thread id, assigned lazily under the recorder lock.
thread_local uint64_t tls_thread_id = 0;

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendAnnotations(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& annotations) {
  out->push_back('{');
  for (size_t i = 0; i < annotations.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, annotations[i].first);
    out->push_back(':');
    AppendJsonString(out, annotations[i].second);
  }
  out->push_back('}');
}

}  // namespace

TraceRecorder::TraceRecorder() : origin_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

TraceRecorder* TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return recorder;
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceRecorder::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  next_slot_ = 0;
}

size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  total_ = 0;
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tls_thread_id == 0) tls_thread_id = ++next_thread_;
  event.thread_id = tls_thread_id;
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    // Ring full: overwrite the oldest surviving span.
    ring_[next_slot_] = std::move(event);
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: the slot at next_slot_ is the oldest once wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceRecorder::total_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceRecorder::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> spans = Snapshot();
  std::string out = "{\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = spans[i];
    if (i > 0) out.push_back(',');
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"parent\":%llu,\"name\":",
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent_id));
    out += buf;
    AppendJsonString(&out, e.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"start_us\":%llu,\"dur_us\":%llu,\"tid\":%llu,\"args\":",
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.duration_us),
                  static_cast<unsigned long long>(e.thread_id));
    out += buf;
    AppendAnnotations(&out, e.annotations);
    out.push_back('}');
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail), "],\"total\":%llu,\"dropped\":%llu}",
                static_cast<unsigned long long>(total_spans()),
                static_cast<unsigned long long>(dropped_spans()));
  out += tail;
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  // chrome://tracing "complete event" format: one {"ph":"X"} record per
  // span; ts/dur in microseconds; pid fixed at 1.
  std::vector<TraceEvent> spans = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = spans[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(&out, e.name);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":1,"
                  "\"tid\":%llu,\"args\":",
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.duration_us),
                  static_cast<unsigned long long>(e.thread_id));
    out += buf;
    AppendAnnotations(&out, e.annotations);
    out.push_back('}');
  }
  out += "]\n";
  return out;
}

TraceSpan::TraceSpan(const char* name) {
  TraceRecorder* recorder = TraceRecorder::Global();
  if (!recorder->enabled()) return;
  recording_ = true;
  name_ = name;
  id_ = recorder->NextSpanId();
  parent_id_ = tls_current_span;
  tls_current_span = id_;
  start_us_ = recorder->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!recording_) return;
  TraceRecorder* recorder = TraceRecorder::Global();
  tls_current_span = parent_id_;
  TraceEvent event;
  event.id = id_;
  event.parent_id = parent_id_;
  event.name = name_;
  event.start_us = start_us_;
  const uint64_t end_us = recorder->NowMicros();
  event.duration_us = end_us > start_us_ ? end_us - start_us_ : 0;
  event.annotations = std::move(annotations_);
  recorder->Record(std::move(event));
}

void TraceSpan::Annotate(const char* key, std::string value) {
  if (!recording_) return;
  annotations_.emplace_back(key, std::move(value));
}

}  // namespace modelhub
