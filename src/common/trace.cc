#include "common/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/coding.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/random.h"

namespace modelhub {

namespace {

/// Current open span on this thread (0 = none); children parent to it.
thread_local uint64_t tls_current_span = 0;

/// Small stable per-thread id, assigned lazily under the recorder lock.
thread_local uint64_t tls_thread_id = 0;

/// The thread's distributed-tracing context (inactive by default).
thread_local TraceContext tls_context;

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendAnnotations(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& annotations) {
  out->push_back('{');
  for (size_t i = 0; i < annotations.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, annotations[i].first);
    out->push_back(':');
    AppendJsonString(out, annotations[i].second);
  }
  out->push_back('}');
}

std::string TraceIdHexOf(uint64_t hi, uint64_t lo) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

uint64_t UnixMicrosNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

uint64_t TraceContext::deadline_remaining_ms() const {
  if (!has_deadline) return 0;
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count());
}

std::string TraceContext::TraceIdHex() const {
  if (!active()) return "";
  return TraceIdHexOf(trace_hi, trace_lo);
}

const TraceContext& CurrentTraceContext() { return tls_context; }

void SetCurrentTraceContext(const TraceContext& context) {
  tls_context = context;
}

uint64_t CurrentSpanId() { return tls_current_span; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : previous_(tls_context) {
  tls_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = previous_; }

TraceContext MakeSampledTraceContext() {
  // Seed from wall clock + pid so concurrent clients on one host do not
  // collide; id must be non-zero to count as active.
  static std::atomic<uint64_t> counter{0};
  Rng rng(UnixMicrosNow() ^
          (static_cast<uint64_t>(::getpid()) << 32) ^
          counter.fetch_add(0x9E3779B9u, std::memory_order_relaxed));
  TraceContext ctx;
  do {
    ctx.trace_hi = rng.Next();
    ctx.trace_lo = rng.Next();
  } while (!ctx.active());
  ctx.sampled = true;
  return ctx;
}

TraceRecorder::TraceRecorder() : origin_(std::chrono::steady_clock::now()) {
  origin_unix_us_ = UnixMicrosNow();
  // Randomize the span-id base: the merged fleet trace keys parent/child
  // edges on span ids, and every process starting from 1 would collide.
  Rng rng(origin_unix_us_ ^ (static_cast<uint64_t>(::getpid()) << 17));
  next_id_.store(rng.Next() & 0x0000FFFFFFFFFFFFull,
                 std::memory_order_relaxed);
  ring_.reserve(capacity_);
}

TraceRecorder* TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return recorder;
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceRecorder::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  next_slot_ = 0;
}

size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  total_ = 0;
}

void TraceRecorder::Record(TraceEvent event) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tls_thread_id == 0) tls_thread_id = ++next_thread_;
    event.thread_id = tls_thread_id;
    ++total_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      // Ring full: overwrite the oldest surviving span.
      ring_[next_slot_] = std::move(event);
      next_slot_ = (next_slot_ + 1) % capacity_;
      dropped = true;
    }
  }
  if (dropped) MH_COUNTER("trace.dropped_events")->Increment();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: the slot at next_slot_ is the oldest once wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceRecorder::total_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t TraceRecorder::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> spans = Snapshot();
  std::string out = "{\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = spans[i];
    if (i > 0) out.push_back(',');
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"parent\":%llu,\"name\":",
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent_id));
    out += buf;
    AppendJsonString(&out, e.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"start_us\":%llu,\"dur_us\":%llu,\"tid\":%llu,\"args\":",
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.duration_us),
                  static_cast<unsigned long long>(e.thread_id));
    out += buf;
    AppendAnnotations(&out, e.annotations);
    out.push_back('}');
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail), "],\"total\":%llu,\"dropped\":%llu}",
                static_cast<unsigned long long>(total_spans()),
                static_cast<unsigned long long>(dropped_spans()));
  out += tail;
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  // chrome://tracing "complete event" format: one {"ph":"X"} record per
  // span; ts/dur in microseconds; pid fixed at 1.
  std::vector<TraceEvent> spans = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = spans[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(&out, e.name);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":1,"
                  "\"tid\":%llu,\"args\":",
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.duration_us),
                  static_cast<unsigned long long>(e.thread_id));
    out += buf;
    AppendAnnotations(&out, e.annotations);
    out.push_back('}');
  }
  out += "]\n";
  return out;
}

TraceSpan::TraceSpan(const char* name) {
  TraceRecorder* recorder = TraceRecorder::Global();
  // The edge sampling decision outranks the local enable switch: a
  // sampled request records even on a recorder-disabled node, a
  // sampled-out one stays silent even on an enabled node.
  const TraceContext& ctx = tls_context;
  if (ctx.active() ? !ctx.sampled : !recorder->enabled()) return;
  recording_ = true;
  name_ = name;
  id_ = recorder->NextSpanId();
  previous_current_ = tls_current_span;
  // Roots adopt the remote caller's span id so the merged fleet trace
  // chains across processes.
  parent_id_ = tls_current_span != 0 ? tls_current_span : ctx.parent_span;
  trace_hi_ = ctx.trace_hi;
  trace_lo_ = ctx.trace_lo;
  tls_current_span = id_;
  start_us_ = recorder->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!recording_) return;
  TraceRecorder* recorder = TraceRecorder::Global();
  tls_current_span = previous_current_;
  TraceEvent event;
  event.id = id_;
  event.parent_id = parent_id_;
  event.name = name_;
  event.start_us = start_us_;
  const uint64_t end_us = recorder->NowMicros();
  event.duration_us = end_us > start_us_ ? end_us - start_us_ : 0;
  event.trace_hi = trace_hi_;
  event.trace_lo = trace_lo_;
  event.annotations = std::move(annotations_);
  if (tls_context.deadline_expired()) {
    // Wasted-work marker: this span closed after the client stopped
    // waiting for the answer.
    event.annotations.emplace_back("after_deadline", "true");
  }
  recorder->Record(std::move(event));
}

void TraceSpan::Annotate(const char* key, std::string value) {
  if (!recording_) return;
  annotations_.emplace_back(key, std::move(value));
}

TraceNodeDump CollectTraceDump(std::string node) {
  TraceRecorder* recorder = TraceRecorder::Global();
  TraceNodeDump dump;
  dump.node = std::move(node);
  dump.pid = static_cast<uint64_t>(::getpid());
  dump.origin_unix_us = recorder->origin_unix_us();
  dump.events = recorder->Snapshot();
  dump.total = recorder->total_spans();
  dump.dropped = recorder->dropped_spans();
  return dump;
}

namespace {

/// Node-section format version; bump when the layout below changes.
constexpr uint64_t kDumpVersion = 1;

}  // namespace

void AppendTraceDump(std::string* out, const TraceNodeDump& dump) {
  PutVarint64(out, kDumpVersion);
  PutLengthPrefixed(out, Slice(dump.node));
  PutVarint64(out, dump.pid);
  PutVarint64(out, dump.origin_unix_us);
  PutVarint64(out, dump.total);
  PutVarint64(out, dump.dropped);
  PutVarint64(out, dump.events.size());
  for (const TraceEvent& e : dump.events) {
    PutVarint64(out, e.id);
    PutVarint64(out, e.parent_id);
    PutVarint64(out, e.trace_hi);
    PutVarint64(out, e.trace_lo);
    PutLengthPrefixed(out, Slice(e.name));
    PutVarint64(out, e.start_us);
    PutVarint64(out, e.duration_us);
    PutVarint64(out, e.thread_id);
    PutVarint64(out, e.annotations.size());
    for (const auto& kv : e.annotations) {
      PutLengthPrefixed(out, Slice(kv.first));
      PutLengthPrefixed(out, Slice(kv.second));
    }
  }
}

Status ParseTraceDumps(Slice in, std::vector<TraceNodeDump>* out) {
  while (!in.empty()) {
    uint64_t version = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &version));
    if (version != kDumpVersion) {
      return Status::Corruption("unsupported trace dump version " +
                                std::to_string(version));
    }
    TraceNodeDump dump;
    Slice node;
    MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &node));
    dump.node = node.ToString();
    MH_RETURN_IF_ERROR(GetVarint64(&in, &dump.pid));
    MH_RETURN_IF_ERROR(GetVarint64(&in, &dump.origin_unix_us));
    MH_RETURN_IF_ERROR(GetVarint64(&in, &dump.total));
    MH_RETURN_IF_ERROR(GetVarint64(&in, &dump.dropped));
    uint64_t nevents = 0;
    MH_RETURN_IF_ERROR(GetVarint64(&in, &nevents));
    dump.events.reserve(static_cast<size_t>(std::min<uint64_t>(
        nevents, 1u << 20)));
    for (uint64_t i = 0; i < nevents; ++i) {
      TraceEvent e;
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.id));
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.parent_id));
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.trace_hi));
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.trace_lo));
      Slice name;
      MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &name));
      e.name = name.ToString();
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.start_us));
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.duration_us));
      MH_RETURN_IF_ERROR(GetVarint64(&in, &e.thread_id));
      uint64_t nann = 0;
      MH_RETURN_IF_ERROR(GetVarint64(&in, &nann));
      for (uint64_t a = 0; a < nann; ++a) {
        Slice key;
        Slice value;
        MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &key));
        MH_RETURN_IF_ERROR(GetLengthPrefixed(&in, &value));
        e.annotations.emplace_back(key.ToString(), value.ToString());
      }
      dump.events.push_back(std::move(e));
    }
    out->push_back(std::move(dump));
  }
  return Status::OK();
}

std::string MergeTraceDumps(const std::vector<TraceNodeDump>& dumps) {
  // Span id -> {dump index, absolute start} so cross-process parent
  // edges can be found and turned into wire.gap spans. Last writer wins
  // on the (astronomically unlikely) id collision.
  struct SpanHome {
    size_t dump = 0;
    uint64_t abs_start_us = 0;
  };
  std::unordered_map<uint64_t, SpanHome> by_id;
  for (size_t d = 0; d < dumps.size(); ++d) {
    for (const TraceEvent& e : dumps[d].events) {
      by_id[e.id] = SpanHome{d, dumps[d].origin_unix_us + e.start_us};
    }
  }

  std::string out = "[";
  bool first = true;
  auto separator = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  char buf[256];
  for (size_t d = 0; d < dumps.size(); ++d) {
    const TraceNodeDump& dump = dumps[d];
    separator();
    // Name the pid row after the node so the viewer shows
    // "modelhubd@host:port" instead of a bare number.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%llu,"
                  "\"tid\":0,\"args\":{\"name\":",
                  static_cast<unsigned long long>(dump.pid));
    out += buf;
    AppendJsonString(&out, dump.node);
    out += "}}";
    for (const TraceEvent& e : dump.events) {
      const uint64_t abs_start = dump.origin_unix_us + e.start_us;
      separator();
      out += "{\"name\":";
      AppendJsonString(&out, e.name);
      std::snprintf(buf, sizeof(buf),
                    ",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":%llu,"
                    "\"tid\":%llu,\"args\":",
                    static_cast<unsigned long long>(abs_start),
                    static_cast<unsigned long long>(e.duration_us),
                    static_cast<unsigned long long>(dump.pid),
                    static_cast<unsigned long long>(e.thread_id));
      out += buf;
      std::vector<std::pair<std::string, std::string>> args = e.annotations;
      if ((e.trace_hi | e.trace_lo) != 0) {
        args.emplace_back("trace_id", TraceIdHexOf(e.trace_hi, e.trace_lo));
      }
      args.emplace_back("span_id", std::to_string(e.id));
      if (e.parent_id != 0) {
        args.emplace_back("parent_id", std::to_string(e.parent_id));
      }
      AppendAnnotations(&out, args);
      out.push_back('}');

      // Parent recorded by a different process: the time between the
      // parent opening and this span opening is wire + queueing — render
      // it as a synthetic span on the child's process row.
      if (e.parent_id == 0) continue;
      auto parent = by_id.find(e.parent_id);
      if (parent == by_id.end() || parent->second.dump == d) continue;
      const uint64_t gap_start = parent->second.abs_start_us;
      const uint64_t gap_dur =
          abs_start > gap_start ? abs_start - gap_start : 0;
      separator();
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"wire.gap\",\"ph\":\"X\",\"ts\":%llu,"
                    "\"dur\":%llu,\"pid\":%llu,\"tid\":%llu,\"args\":",
                    static_cast<unsigned long long>(gap_start),
                    static_cast<unsigned long long>(gap_dur),
                    static_cast<unsigned long long>(dump.pid),
                    static_cast<unsigned long long>(e.thread_id));
      out += buf;
      std::vector<std::pair<std::string, std::string>> gap_args;
      gap_args.emplace_back("from", dumps[parent->second.dump].node);
      gap_args.emplace_back("to", dump.node);
      if ((e.trace_hi | e.trace_lo) != 0) {
        gap_args.emplace_back("trace_id",
                              TraceIdHexOf(e.trace_hi, e.trace_lo));
      }
      AppendAnnotations(&out, gap_args);
      out.push_back('}');
    }
  }
  out += "]\n";
  return out;
}

}  // namespace modelhub
