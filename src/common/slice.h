#ifndef MODELHUB_COMMON_SLICE_H_
#define MODELHUB_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace modelhub {

/// A non-owning view over a contiguous byte range, in the spirit of
/// rocksdb::Slice. Used by codecs and the chunk store so that encode /
/// decode paths never force copies. The caller guarantees the underlying
/// storage outlives the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  /// Views a std::string's bytes.
  explicit Slice(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes (n must be <= size()).
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// Returns a sub-view [offset, offset + len); clamped to the slice end.
  Slice SubSlice(size_t offset, size_t len) const {
    if (offset >= size_) return Slice();
    const size_t n = (offset + len > size_) ? size_ - offset : len;
    return Slice(data_ + offset, n);
  }

  /// Copies the bytes into an owning std::string.
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_SLICE_H_
