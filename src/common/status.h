#ifndef MODELHUB_COMMON_STATUS_H_
#define MODELHUB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace modelhub {

/// Error categories used throughout ModelHub. The set mirrors the codes used
/// by storage engines (Arrow / RocksDB / LevelDB) since the workloads are
/// similar: file I/O, corrupt archives, bad user queries, missing versions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Network-facing codes (src/net): appended so existing wire/enum values
  // stay stable.
  kUnavailable,        ///< Peer unreachable / refusing / shedding load.
  kDeadlineExceeded,   ///< An op-scoped deadline expired.
};

/// Returns a short human-readable name for `code` ("OK", "IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status encodes the result of an operation that may fail. ModelHub does
/// not use exceptions (per the project style); every fallible public API
/// returns a Status or a Result<T>.
///
/// Statuses are cheap to copy in the common OK case: an OK status stores no
/// heap state.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_STATUS_H_
