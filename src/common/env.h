#ifndef MODELHUB_COMMON_ENV_H_
#define MODELHUB_COMMON_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace modelhub {

/// A read-only view of an entire file pinned in memory (mmap on PosixEnv).
/// The bytes reflect the file as it was when the mapping was created:
/// ModelHub artifacts are write-once (WriteFile publishes a new inode via
/// rename), so an open mapping never observes a torn rewrite. The mapping
/// owns its resources and unmaps on destruction.
class FileMapping {
 public:
  virtual ~FileMapping() = default;
  const char* data() const { return data_; }
  size_t size() const { return size_; }

 protected:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Env abstracts the filesystem so the DLV repository, PAS chunk store and
/// hub can run against a real directory tree or a deterministic in-memory
/// tree in tests (the RocksDB Env pattern, trimmed to whole-file
/// operations — ModelHub artifacts are written once and read many times).
class Env {
 public:
  virtual ~Env() = default;

  /// Maps the whole file read-only for zero-copy access. Default:
  /// Unimplemented — callers must keep a ReadFileRange-based fallback
  /// (MemEnv and FaultInjectionEnv deliberately do not map, so fault
  /// sweeps exercise the fallback path and injected read faults stay
  /// observable). Implementations may also decline (e.g. empty files).
  virtual Result<std::unique_ptr<FileMapping>> MapFile(
      const std::string& path);

  /// Atomically replaces (creates) `path` with `contents`: on success the
  /// file holds exactly `contents`; on failure the previous contents (or
  /// absence) of `path` are preserved. Readers never observe a partial
  /// write through this call. (FaultInjectionEnv's torn-write mode is the
  /// one deliberate exception — it models a crash below this contract.)
  virtual Status WriteFile(const std::string& path,
                           const std::string& contents) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if it exists (POSIX
  /// rename semantics). This is the publish primitive of the crash-safe
  /// commit protocol: after a crash, `to` holds either its old contents or
  /// all of `from`'s, never a mix.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Reads `length` bytes starting at `offset`. Short reads past EOF return
  /// the available suffix (possibly empty).
  virtual Result<std::string> ReadFileRange(const std::string& path,
                                            uint64_t offset,
                                            uint64_t length) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Creates the directory (and parents). Idempotent.
  virtual Status CreateDirs(const std::string& path) = 0;
  virtual bool DirExists(const std::string& path) = 0;

  /// Removes an empty directory. Fails if `path` is missing, is a file, or
  /// still has children (use RemoveTree for recursive removal).
  virtual Status DeleteDir(const std::string& path) = 0;

  /// Lists immediate children (file and directory names, not full paths),
  /// sorted lexicographically.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// Returns the process-wide POSIX filesystem Env (never null, not owned).
  static Env* Default();
};

/// An in-memory Env for hermetic tests. Paths are treated as opaque
/// '/'-separated strings; directories are tracked implicitly.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Status WriteFile(const std::string& path,
                   const std::string& contents) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                    uint64_t length) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  bool DirExists(const std::string& path) override;
  Status DeleteDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  // Keyed by full path. Directories are entries with is_dir = true.
  struct Node {
    bool is_dir = false;
    std::string contents;
  };
  std::vector<std::pair<std::string, Node>>::iterator Find(
      const std::string& path);
  std::vector<std::pair<std::string, Node>> files_;
};

/// Joins two path components with exactly one '/'.
std::string JoinPath(const std::string& a, const std::string& b);

/// Recursively deletes `path` (a directory tree or a single file).
/// Missing paths are OK (idempotent); the first delete error aborts the
/// walk so a fault-injected cleanup fails loudly instead of half-working.
Status RemoveTree(Env* env, const std::string& path);

}  // namespace modelhub

#endif  // MODELHUB_COMMON_ENV_H_
