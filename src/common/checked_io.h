#ifndef MODELHUB_COMMON_CHECKED_IO_H_
#define MODELHUB_COMMON_CHECKED_IO_H_

#include <string>

#include "common/env.h"
#include "common/result.h"

namespace modelhub {

/// Whole-file CRC framing used by the catalog, staging files, the archive
/// manifest and the commit journal: `payload || fixed32 crc32(payload)`.
/// A truncated, extended or bit-flipped file fails the footer check, so
/// readers see Status::Corruption instead of silently decoding garbage.

/// Appends the CRC-32 footer to `payload` and returns the framed bytes.
std::string WithCrcFooter(std::string payload);

/// Verifies and strips the footer. Returns Corruption on any mismatch.
Result<std::string> StripCrcFooter(const std::string& framed);

/// WriteFile / ReadFile with the CRC frame applied.
Status WriteChecked(Env* env, const std::string& path,
                    const std::string& payload);
Result<std::string> ReadChecked(Env* env, const std::string& path);

}  // namespace modelhub

#endif  // MODELHUB_COMMON_CHECKED_IO_H_
