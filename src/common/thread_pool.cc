#include "common/thread_pool.h"

#include <algorithm>

#include "common/trace.h"

namespace modelhub {

void WaitGroup::Add(int n) {
  std::unique_lock<std::mutex> lock(mutex_);
  count_ += n;
}

void WaitGroup::Done() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (--count_ == 0) zero_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  zero_.wait(lock, [this] { return count_ == 0; });
}

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  // Hand the scheduler's trace context to the worker so spans recorded on
  // pool threads (retrieval, PAS) keep the originating request's trace id
  // and parent to the span that was open at Schedule time.
  const TraceContext& ctx = CurrentTraceContext();
  if (ctx.active()) {
    TraceContext inherited = ctx;
    const uint64_t scheduler_span = CurrentSpanId();
    if (scheduler_span != 0) inherited.parent_span = scheduler_span;
    task = [inherited, inner = std::move(task)] {
      ScopedTraceContext scope(inherited);
      inner();
    };
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Schedule(WaitGroup* group, std::function<void()> task) {
  // The Add must precede enqueueing: once queued, the task (and its Done)
  // can run at any moment, and a Wait observing the pre-Add count would
  // return with the task still pending.
  group->Add(1);
  Schedule([group, task = std::move(task)] {
    task();
    group->Done();
  });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace modelhub
