#ifndef MODELHUB_COMMON_RESULT_H_
#define MODELHUB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace modelhub {

/// Result<T> holds either a value of type T or a non-OK Status. It is the
/// return type of fallible functions that produce a value, mirroring
/// arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<FloatMatrix> m = LoadMatrix(path);
///   if (!m.ok()) return m.status();
///   Use(*m);
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing a Result from
  /// an OK status is a programming error and is converted to an Internal
  /// error so that misuse is observable rather than undefined.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the contained status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Value accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out of the Result. Must only be called when ok().
  T MoveValue() { return std::get<T>(std::move(value_)); }

  /// Returns the value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> value_;
};

}  // namespace modelhub

#endif  // MODELHUB_COMMON_RESULT_H_
