#include "common/slow_log.h"

#include <algorithm>
#include <cstdio>

namespace modelhub {

SlowRequestLog::SlowRequestLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void SlowRequestLog::Record(SlowRequestEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_slot_] = std::move(entry);
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
}

std::vector<SlowRequestEntry> SlowRequestLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowRequestEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t SlowRequestLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string SlowRequestLog::ToJson() const {
  const std::vector<SlowRequestEntry> entries = Snapshot();
  std::string out = "{\"total\":" + std::to_string(total()) +
                    ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowRequestEntry& e = entries[i];
    if (i > 0) out.push_back(',');
    // op/status are opcode and status-code names — no escaping needed.
    out += "{\"op\":\"" + e.op + "\"";
    out += ",\"latency_us\":" + std::to_string(e.latency_us);
    out += ",\"status\":\"" + e.status + "\"";
    out += ",\"trace_id\":\"";
    if ((e.trace_hi | e.trace_lo) != 0) {
      char hex[40];
      std::snprintf(hex, sizeof(hex), "%016llx%016llx",
                    static_cast<unsigned long long>(e.trace_hi),
                    static_cast<unsigned long long>(e.trace_lo));
      out += hex;
    }
    out += "\"";
    out += ",\"after_deadline\":";
    out += e.after_deadline ? "true" : "false";
    out += ",\"unix_us\":" + std::to_string(e.unix_us);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace modelhub
