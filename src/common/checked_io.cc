#include "common/checked_io.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/macros.h"

namespace modelhub {

std::string WithCrcFooter(std::string payload) {
  const uint32_t crc = Crc32(Slice(payload));
  PutFixed32(&payload, crc);
  return payload;
}

Result<std::string> StripCrcFooter(const std::string& framed) {
  if (framed.size() < 4) {
    return Status::Corruption("file too small for CRC footer");
  }
  Slice footer(framed.data() + framed.size() - 4, 4);
  uint32_t stored = 0;
  MH_RETURN_IF_ERROR(GetFixed32(&footer, &stored));
  const Slice payload(framed.data(), framed.size() - 4);
  if (Crc32(payload) != stored) {
    return Status::Corruption("CRC footer mismatch");
  }
  return payload.ToString();
}

Status WriteChecked(Env* env, const std::string& path,
                    const std::string& payload) {
  return env->WriteFile(path, WithCrcFooter(payload));
}

Result<std::string> ReadChecked(Env* env, const std::string& path) {
  MH_ASSIGN_OR_RETURN(std::string framed, env->ReadFile(path));
  auto payload = StripCrcFooter(framed);
  if (!payload.ok()) {
    return Status::Corruption(payload.status().message() + ": " + path);
  }
  return payload;
}

}  // namespace modelhub
