#include "router/hash_ring.h"

#include "common/macros.h"

namespace modelhub {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

HashRing::HashRing(int vnodes) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

void HashRing::AddNode(const std::string& node) {
  if (!nodes_.insert(node).second) return;
  for (int i = 0; i < vnodes_; ++i) {
    const uint64_t point = Fnv1a64(node + "#" + std::to_string(i));
    // On the (astronomically rare) collision the earlier node keeps the
    // point, so placement stays independent of insertion order... except
    // it is not: emplace keeps the existing entry, which IS insertion-
    // order dependent. Resolve deterministically by node name instead.
    auto it = ring_.find(point);
    if (it == ring_.end()) {
      ring_.emplace(point, node);
    } else if (node < it->second) {
      it->second = node;
    }
  }
}

void HashRing::RemoveNode(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  // Re-add surviving nodes' points that this node had won by collision.
  for (const std::string& survivor : nodes_) {
    for (int i = 0; i < vnodes_; ++i) {
      const uint64_t point = Fnv1a64(survivor + "#" + std::to_string(i));
      auto it = ring_.find(point);
      if (it == ring_.end()) {
        ring_.emplace(point, survivor);
      } else if (survivor < it->second) {
        it->second = survivor;
      }
    }
  }
}

const std::string& HashRing::NodeFor(std::string_view key) const {
  MH_CHECK(!ring_.empty());
  const uint64_t point = Fnv1a64(key);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
  return it->second;
}

}  // namespace modelhub
