#ifndef MODELHUB_ROUTER_HASH_RING_H_
#define MODELHUB_ROUTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

namespace modelhub {

/// 64-bit FNV-1a — the ring's hash. Deterministic across platforms and
/// processes (the router fleet must agree on key placement), and cheap
/// enough to run per request.
uint64_t Fnv1a64(std::string_view data);

/// Consistent-hash ring mapping keys (model names) to nodes (shard ids).
///
/// Each node is projected onto the ring at `vnodes` pseudo-random points
/// ("<node>#<i>" hashed); a key belongs to the first node point clockwise
/// from its own hash. The property the router leans on: adding or
/// removing one node only remaps the keys that land on that node's arcs —
/// every other key keeps its shard, so a topology change never reshuffles
/// the whole fleet (router_test pins this down).
///
/// Not thread-safe; the router builds it once at Start and treats it as
/// immutable afterwards.
class HashRing {
 public:
  explicit HashRing(int vnodes = 64);

  void AddNode(const std::string& node);
  void RemoveNode(const std::string& node);

  bool empty() const { return ring_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }

  /// Node owning `key`. Must not be called on an empty ring.
  const std::string& NodeFor(std::string_view key) const;

 private:
  int vnodes_;
  std::map<uint64_t, std::string> ring_;  ///< hash point -> node.
  std::set<std::string> nodes_;
};

}  // namespace modelhub

#endif  // MODELHUB_ROUTER_HASH_RING_H_
