#ifndef MODELHUB_ROUTER_ROUTER_H_
#define MODELHUB_ROUTER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/slow_log.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "router/backend.h"
#include "router/hash_ring.h"

namespace modelhub {

/// Static fleet layout: N shards, each a set of replica endpoints serving
/// the same models. Model names are consistent-hashed across shards;
/// reads round-robin across a shard's replicas.
struct FleetTopology {
  struct Shard {
    std::string name;
    std::vector<Endpoint> replicas;
  };
  std::vector<Shard> shards;

  size_t num_backends() const;

  /// Parses "host:port,host:port;host:port" — ';' separates shards, ','
  /// separates replicas within a shard. Shards are named "shard<i>" in
  /// declaration order (the ring hashes these names, so order matters
  /// for placement stability across restarts).
  static Result<FleetTopology> Parse(const std::string& spec);
};

/// modelhub-router configuration (DESIGN.md §11). The frontend-facing
/// knobs mirror ServerOptions; the rest parameterize the resilience
/// stack.
struct RouterOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port; read it back with port().

  int num_workers = 8;
  int max_connections = 64;
  int queue_capacity = 32;
  uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  int io_timeout_ms = 10000;
  int idle_timeout_ms = 30000;

  /// Budgets for one backend hop (connect / request+response).
  int backend_connect_timeout_ms = 1000;
  int backend_op_timeout_ms = 10000;

  /// Active health checking: every probe_interval_ms the prober PINGs
  /// each backend (fresh connection, probe_timeout_ms budget). Probe and
  /// live-traffic failures share the breaker's consecutive-failure
  /// counter; failure_threshold of them in a row opens the breaker.
  int probe_interval_ms = 200;
  int probe_timeout_ms = 1000;
  int failure_threshold = 3;
  /// Open-breaker cooldown before a single half-open probe is admitted.
  int breaker_open_ms = 500;

  /// Retry budget per routed request: total attempts (first try
  /// included). Retries fail over to the next healthy replica; backoff
  /// (exponential, jittered, capped) is only inserted once every replica
  /// of the shard has been tried in the current round.
  int max_attempts = 4;
  int retry_backoff_base_ms = 10;
  int retry_backoff_max_ms = 200;

  /// Virtual nodes per shard on the consistent-hash ring.
  int vnodes_per_shard = 64;

  /// Slow-request log threshold: requests whose dispatch takes at least
  /// this long land in a bounded ring dumped via STATS (0 disables).
  int slow_request_us = 100000;
  int slow_log_capacity = 64;
};

/// The fleet frontend: speaks the net/frame.h wire protocol on both
/// sides. Clients connect to it exactly as they would to a single
/// modelhubd; behind it, model-keyed requests (GET_SNAPSHOT) are
/// consistent-hashed to a shard and round-robined across that shard's
/// replicas, fan-out requests (LIST_MODELS, DQL, STATS) visit every
/// shard, and PING/SHUTDOWN are answered locally.
///
/// Resilience stack, outermost first (DESIGN.md §11):
///   * bounded retries with exponential backoff + jitter, failing over
///     to the next healthy replica (all routed ops are reads, hence
///     idempotent and safe to retry);
///   * per-backend circuit breakers — consecutive transport failures or
///     backend sheds open the breaker, a half-open probe re-admits;
///   * active health checks (periodic PING) that also parse the
///     backend's advertised state and steer away from draining peers;
///   * graceful degradation — a shard with zero admittable replicas
///     sheds the request with a typed kUnavailable frame immediately;
///   * the same accept→bounded-queue→worker drain semantics as
///     ModelHubServer (SIGTERM finishes in-flight requests, queued
///     connections get a typed refusal).
class ModelHubRouter {
 public:
  ModelHubRouter(FleetTopology topology, RouterOptions options = {});
  ~ModelHubRouter();

  ModelHubRouter(const ModelHubRouter&) = delete;
  ModelHubRouter& operator=(const ModelHubRouter&) = delete;

  Status Start();
  Status Stop();
  void RequestStop();  ///< Async-signal-safe drain trigger.
  void WaitUntilStopRequested() const;

  int port() const;
  const RouterOptions& options() const { return options_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool stop_requested() const { return stopping_.load(); }

  /// The shard a model name routes to (tests / dlv introspection).
  const std::string& ShardForModel(std::string_view model) const;

  /// Point-in-time per-backend health, for tests and STATS.
  struct BackendStatus {
    std::string name;
    int shard = 0;
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
    bool draining = false;
    uint64_t consecutive_failures = 0;
  };
  std::vector<BackendStatus> BackendStatuses() const;
  /// True when every backend's breaker is closed and none is draining.
  bool AllBackendsHealthy() const;

 private:
  struct ShardRuntime {
    std::string name;
    std::vector<std::unique_ptr<Backend>> replicas;
    std::atomic<uint64_t> rr{0};  ///< Round-robin read cursor.
  };

  struct PendingConn {
    Socket sock;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void WorkerLoop();
  void ProbeLoop();
  void ServeConnection(Socket sock);
  void Shed(Socket sock, const char* reason);

  Status Dispatch(const Frame& request, std::string* out);
  Status HandlePing(std::string* out);
  Status HandleGetSnapshot(const Frame& request, std::string* out);
  Status HandleListModels(std::string* out);
  Status HandleDqlQuery(const Frame& request, std::string* out);
  Status HandleStats(std::string* out);
  /// Own trace-dump section + a best-effort section from every backend,
  /// concatenated — the fleet-wide GET_TRACE answer.
  Status HandleGetTrace(std::string* out);
  /// Own Prometheus text labeled node="router" + every backend's labeled
  /// node="host:port", with `# TYPE` lines deduplicated.
  Status HandleGetMetrics(std::string* out);

  /// Retry/failover loop over one shard's replicas. On success `*out`
  /// holds the backend's result bytes and the return is the backend's
  /// own status; kUnavailable with a "shard ..." message means the
  /// request was shed (budget exhausted or no admittable replica).
  Status ForwardToShard(ShardRuntime* shard, uint8_t opcode,
                        std::string_view payload, std::string* out);

  /// One attempt against one replica. Transport faults and backend
  /// sheds feed the breaker; a definitive server-side answer records
  /// success. Returns the status the retry loop classifies.
  Status TryBackend(Backend* backend, uint8_t opcode,
                    std::string_view payload, std::string* out);

  /// Replica choice for `attempt` (0-based) of a request: round-robin
  /// start, skipping draining and breaker-refused replicas; falls back
  /// to draining-but-admitted replicas before giving up.
  Backend* PickReplica(ShardRuntime* shard, uint64_t start, int attempt);

  void UpdateHealthGauges() const;
  void UpdateUptimeGauge() const;

  const FleetTopology topology_;
  const RouterOptions options_;

  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  std::map<std::string, ShardRuntime*, std::less<>> shard_by_name_;
  HashRing ring_;

  std::optional<Listener> listener_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread accept_thread_;
  std::thread probe_thread_;
  WaitGroup worker_group_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};
  std::chrono::steady_clock::time_point started_at_;
  SlowRequestLog slow_log_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> pending_;  ///< Guarded by queue_mu_.
};

/// Entry point behind `dlv serve --fleet` and the standalone
/// `modelhub-router` binary: starts the router, prints
/// "modelhub-router listening on <host>:<port> (...)" to stdout, blocks
/// until SIGTERM/SIGINT or a SHUTDOWN rpc, drains, and returns a process
/// exit code.
int RunRouterMain(FleetTopology topology, RouterOptions options);

}  // namespace modelhub

#endif  // MODELHUB_ROUTER_ROUTER_H_
