#include "router/backend.h"

#include <utility>

namespace modelhub {

const char* BreakerStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      return false;  // One probe is already out; fail fast.
    case State::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      if (now - opened_at_ <
          std::chrono::milliseconds(options_.open_ms)) {
        return false;
      }
      state_ = State::kHalfOpen;  // This caller is the probe.
      return true;
    }
  }
  return false;
}

bool CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  const bool reopened = state_ != State::kClosed;
  state_ = State::kClosed;
  failures_ = 0;
  return reopened;
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
  if (state_ != State::kOpen &&
      (state_ == State::kHalfOpen ||
       failures_ >= static_cast<uint64_t>(options_.failure_threshold))) {
    state_ = State::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
    return true;
  }
  if (state_ == State::kOpen) {
    // Keep an already-open breaker's cooldown fresh so a flapping
    // backend is not re-probed faster than open_ms.
    opened_at_ = std::chrono::steady_clock::now();
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

Result<ModelHubClient> Backend::Acquire() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      ModelHubClient client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  return ModelHubClient::Connect(endpoint_.host, endpoint_.port,
                                 client_options_);
}

void Backend::Release(ModelHubClient client) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(client));
}

void Backend::InvalidatePool() {
  std::vector<ModelHubClient> doomed;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    doomed.swap(pool_);
  }
  // Sockets close outside the lock.
}

size_t Backend::pooled_connections() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_.size();
}

}  // namespace modelhub
