#include "router/router.h"

#include <algorithm>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "net/client.h"

namespace modelhub {
namespace {

/// Wire overhead of one frame: length prefix + version + opcode + CRC.
constexpr uint64_t kFrameOverheadBytes = 4 + kFrameHeaderBytes + 4;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

uint64_t UnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Faults worth burning retry budget on. kUnavailable / kDeadlineExceeded
/// cover refused connects, sheds, and expired budgets; kIOError and
/// kCorruption cover a connection torn mid-frame by a dying backend. Any
/// other code is the backend's definitive answer (NotFound, bad DQL, ...)
/// and retrying it elsewhere would return the same thing.
bool RetryableStatus(const Status& status) {
  return status.IsUnavailable() || status.IsDeadlineExceeded() ||
         status.IsIOError() || status.IsCorruption();
}

Rng& JitterRng() {
  // Per-thread so concurrent workers do not share backoff phase (retry
  // storms synchronizing across workers is exactly what jitter prevents).
  thread_local Rng rng(static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1)));
  return rng;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<Endpoint> ParseEndpoint(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument("endpoint '" + text +
                                   "' is not host:port");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == nullptr || *end != '\0' || port < 1 ||
      port > 65535) {
    return Status::InvalidArgument("endpoint '" + text +
                                   "' has an invalid port");
  }
  endpoint.port = static_cast<int>(port);
  return endpoint;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

size_t FleetTopology::num_backends() const {
  size_t total = 0;
  for (const Shard& shard : shards) total += shard.replicas.size();
  return total;
}

Result<FleetTopology> FleetTopology::Parse(const std::string& spec) {
  FleetTopology topology;
  size_t start = 0;
  for (;;) {
    const size_t end = spec.find(';', start);
    const std::string shard_spec = Trim(
        end == std::string::npos ? spec.substr(start)
                                 : spec.substr(start, end - start));
    if (shard_spec.empty()) {
      return Status::InvalidArgument(
          "fleet topology has an empty shard (spec: '" + spec + "')");
    }
    Shard shard;
    shard.name = "shard" + std::to_string(topology.shards.size());
    size_t rstart = 0;
    for (;;) {
      const size_t rend = shard_spec.find(',', rstart);
      const std::string replica_spec = Trim(
          rend == std::string::npos ? shard_spec.substr(rstart)
                                    : shard_spec.substr(rstart, rend - rstart));
      if (replica_spec.empty()) {
        return Status::InvalidArgument("shard '" + shard.name +
                                       "' has an empty replica endpoint");
      }
      MH_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(replica_spec));
      shard.replicas.push_back(std::move(endpoint));
      if (rend == std::string::npos) break;
      rstart = rend + 1;
    }
    topology.shards.push_back(std::move(shard));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return topology;
}

ModelHubRouter::ModelHubRouter(FleetTopology topology, RouterOptions options)
    : topology_(std::move(topology)),
      options_(options),
      ring_(options.vnodes_per_shard),
      slow_log_(static_cast<size_t>(std::max(1, options.slow_log_capacity))) {}

ModelHubRouter::~ModelHubRouter() { (void)Stop(); }

Status ModelHubRouter::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("router already running");
  }
  if (topology_.shards.empty()) {
    return Status::InvalidArgument("fleet topology has no shards");
  }
  shards_.clear();
  shard_by_name_.clear();
  ring_ = HashRing(options_.vnodes_per_shard);

  CircuitBreaker::Options breaker_options;
  breaker_options.failure_threshold = std::max(1, options_.failure_threshold);
  breaker_options.open_ms = std::max(1, options_.breaker_open_ms);
  ClientOptions backend_options;
  backend_options.connect_timeout_ms = options_.backend_connect_timeout_ms;
  backend_options.op_timeout_ms = options_.backend_op_timeout_ms;
  backend_options.max_frame_bytes = options_.max_frame_bytes;

  for (size_t i = 0; i < topology_.shards.size(); ++i) {
    const FleetTopology::Shard& shard = topology_.shards[i];
    if (shard.replicas.empty()) {
      return Status::InvalidArgument("shard '" + shard.name +
                                     "' has no replicas");
    }
    auto runtime = std::make_unique<ShardRuntime>();
    runtime->name = shard.name;
    for (const Endpoint& endpoint : shard.replicas) {
      runtime->replicas.push_back(
          std::make_unique<Backend>(endpoint, static_cast<int>(i),
                                    breaker_options, backend_options));
    }
    ring_.AddNode(shard.name);
    shard_by_name_.emplace(shard.name, runtime.get());
    shards_.push_back(std::move(runtime));
  }

  MH_ASSIGN_OR_RETURN(Listener listener,
                      Listener::Bind(options_.host, options_.port));
  listener_.emplace(std::move(listener));
  workers_ = std::make_unique<ThreadPool>(std::max(1, options_.num_workers));

  stopping_.store(false);
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  MH_COUNTER("router.starts.count")->Increment();
  UpdateUptimeGauge();
  UpdateHealthGauges();
  for (int i = 0; i < workers_->num_threads(); ++i) {
    workers_->Schedule(&worker_group_, [this] { WorkerLoop(); });
  }
  probe_thread_ = std::thread([this] { ProbeLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

int ModelHubRouter::port() const {
  return listener_.has_value() ? listener_->port() : 0;
}

void ModelHubRouter::RequestStop() {
  // Only an atomic store and a pipe write — callable from signal handlers.
  stopping_.store(true);
  if (listener_.has_value()) listener_->Wake();
}

void ModelHubRouter::WaitUntilStopRequested() const {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Status ModelHubRouter::Stop() {
  if (!running_.load()) return Status::OK();
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.notify_all();
  worker_group_.Wait();
  std::deque<PendingConn> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(pending_);
    MH_GAUGE("router.queue.depth")->Set(0);
  }
  for (PendingConn& pc : leftover) {
    Shed(std::move(pc.sock), "router draining");
  }
  if (probe_thread_.joinable()) probe_thread_.join();
  workers_.reset();
  listener_.reset();
  // The shard table survives Stop (tests inspect breaker states after a
  // drain) but pooled backend sockets are released now.
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) backend->InvalidatePool();
  }
  UpdateUptimeGauge();
  MH_COUNTER("router.stops.count")->Increment();
  running_.store(false, std::memory_order_release);
  return Status::OK();
}

const std::string& ModelHubRouter::ShardForModel(std::string_view model) const {
  return ring_.NodeFor(model);
}

std::vector<ModelHubRouter::BackendStatus> ModelHubRouter::BackendStatuses()
    const {
  std::vector<BackendStatus> statuses;
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      BackendStatus status;
      status.name = backend->endpoint().Name();
      status.shard = backend->shard();
      status.breaker = backend->breaker().state();
      status.draining = backend->draining();
      status.consecutive_failures = backend->breaker().consecutive_failures();
      statuses.push_back(std::move(status));
    }
  }
  return statuses;
}

bool ModelHubRouter::AllBackendsHealthy() const {
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      if (backend->breaker().state() != CircuitBreaker::State::kClosed ||
          backend->draining()) {
        return false;
      }
    }
  }
  return !shards_.empty();
}

void ModelHubRouter::UpdateHealthGauges() const {
  int64_t healthy = 0;
  int64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      ++total;
      if (backend->breaker().state() == CircuitBreaker::State::kClosed &&
          !backend->draining()) {
        ++healthy;
      }
    }
  }
  MH_GAUGE("router.backends.healthy")->Set(healthy);
  MH_GAUGE("router.backends.total")->Set(total);
}

void ModelHubRouter::UpdateUptimeGauge() const {
  MH_GAUGE("router.uptime_seconds")
      ->Set(static_cast<int64_t>(ElapsedUs(started_at_) / 1000000));
}

void ModelHubRouter::Shed(Socket sock, const char* reason) {
  MH_COUNTER("router.shed.count")->Increment();
  // Opcode 0: the request was never read, so there is nothing to echo.
  (void)WriteFrame(&sock, 0,
                   EncodeResponsePayload(Status::Unavailable(reason), ""),
                   Deadline::AfterMs(1000));
}

void ModelHubRouter::AcceptLoop() {
  while (!stopping_.load()) {
    Result<Socket> accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) break;
      continue;  // Spurious wake or transient accept failure.
    }
    MH_COUNTER("router.accepted.count")->Increment();
    if (stopping_.load()) {
      Shed(accepted.MoveValue(), "router draining");
      break;
    }
    std::unique_lock<std::mutex> lock(queue_mu_);
    const size_t queued = pending_.size();
    if (queued >= static_cast<size_t>(options_.queue_capacity) ||
        active_connections_.load() + static_cast<int>(queued) >=
            options_.max_connections) {
      lock.unlock();
      Shed(accepted.MoveValue(), "router at capacity");
      continue;
    }
    pending_.push_back(
        {accepted.MoveValue(), std::chrono::steady_clock::now()});
    MH_GAUGE("router.queue.depth")->Set(static_cast<int64_t>(pending_.size()));
    lock.unlock();
    queue_cv_.notify_one();
  }
}

void ModelHubRouter::WorkerLoop() {
  for (;;) {
    PendingConn pc;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stopping_.load() || !pending_.empty(); });
      if (stopping_.load()) break;
      pc = std::move(pending_.front());
      pending_.pop_front();
      MH_GAUGE("router.queue.depth")
          ->Set(static_cast<int64_t>(pending_.size()));
    }
    const uint64_t waited_us = ElapsedUs(pc.enqueued);
    MH_HISTOGRAM("router.queue.wait.us")->Record(waited_us);
    // Same staleness rule as modelhubd: a connection queued past the idle
    // timeout belongs to a client that has given up — shed, don't serve.
    if (waited_us / 1000 >
        static_cast<uint64_t>(std::max(0, options_.idle_timeout_ms))) {
      Shed(std::move(pc.sock), "queued past idle timeout");
      continue;
    }
    active_connections_.fetch_add(1);
    MH_GAUGE("router.connections.active")->Add(1);
    ServeConnection(std::move(pc.sock));
    MH_GAUGE("router.connections.active")->Add(-1);
    active_connections_.fetch_sub(1);
  }
}

void ModelHubRouter::ServeConnection(Socket sock) {
  while (!stopping_.load()) {
    Frame request;
    bool clean_eof = false;
    const Status read =
        ReadFrame(&sock, &request, options_.max_frame_bytes,
                  Deadline::AfterMs(options_.idle_timeout_ms), &stopping_,
                  &clean_eof);
    if (!read.ok()) {
      if (!clean_eof && !stopping_.load() && !read.IsDeadlineExceeded() &&
          !read.IsUnavailable()) {
        MH_COUNTER("router.errors.count")->Increment();
      }
      break;
    }
    MH_COUNTER("router.bytes.in")
        ->Add(request.payload.size() + kFrameOverheadBytes);

    std::string result;
    Status status;
    const TraceContext ctx = ContextFromFrame(request);
    uint64_t latency_us = 0;
    {
      // The inbound trace context stays installed across the backend
      // hops below, so the outbound client re-emits it on the wire with
      // the router.forward span as the new parent.
      ScopedTraceContext trace_scope(ctx);
      TraceSpan span("router.request");
      span.Annotate("op", std::string(OpcodeToString(request.opcode)));
      const auto dispatched_at = std::chrono::steady_clock::now();
      if (request.version != kWireVersion) {
        status = Status::InvalidArgument(
            "unsupported wire version " + std::to_string(request.version));
      } else {
        status = Dispatch(request, &result);
      }
      latency_us = ElapsedUs(dispatched_at);
      MH_HISTOGRAM("router.op.forward.us")->Record(latency_us);
      span.Annotate("status", std::string(StatusCodeToString(status.code())));
      span.Annotate("result_bytes", static_cast<uint64_t>(result.size()));
    }
    MH_COUNTER("router.requests.count")->Increment();
    if (!status.ok()) MH_COUNTER("router.errors.count")->Increment();
    const bool after_deadline = ctx.deadline_expired();
    if (after_deadline) {
      MH_COUNTER("router.deadline.expired.count")->Increment();
    }
    if (options_.slow_request_us > 0 &&
        latency_us >= static_cast<uint64_t>(options_.slow_request_us)) {
      SlowRequestEntry entry;
      entry.op = std::string(OpcodeToString(request.opcode));
      entry.latency_us = latency_us;
      entry.status = std::string(StatusCodeToString(status.code()));
      entry.trace_hi = ctx.trace_hi;
      entry.trace_lo = ctx.trace_lo;
      entry.after_deadline = after_deadline;
      entry.unix_us = UnixMicros();
      slow_log_.Record(std::move(entry));
      MH_COUNTER("router.slow_requests.count")->Increment();
    }

    const std::string payload = EncodeResponsePayload(status, result);
    MH_COUNTER("router.bytes.out")->Add(payload.size() + kFrameOverheadBytes);
    const Status written =
        WriteFrame(&sock, request.opcode, payload,
                   Deadline::AfterMs(options_.io_timeout_ms));
    if (!written.ok()) break;
    if (request.opcode == static_cast<uint8_t>(Opcode::kShutdown)) {
      RequestStop();
      break;
    }
  }
}

Status ModelHubRouter::Dispatch(const Frame& request, std::string* out) {
  switch (static_cast<Opcode>(request.opcode)) {
    case Opcode::kPing:
      return HandlePing(out);
    case Opcode::kListModels:
      return HandleListModels(out);
    case Opcode::kGetSnapshot:
      return HandleGetSnapshot(request, out);
    case Opcode::kDqlQuery:
      return HandleDqlQuery(request, out);
    case Opcode::kStats:
      return HandleStats(out);
    case Opcode::kGetTrace:
      return HandleGetTrace(out);
    case Opcode::kGetMetrics:
      return HandleGetMetrics(out);
    case Opcode::kShutdown:
      // Drains the router only; backends keep serving for any other
      // frontend (DESIGN.md §11 drain ordering).
      *out = "draining";
      return Status::OK();
  }
  return Status::InvalidArgument("unknown opcode " +
                                 std::to_string(request.opcode));
}

Status ModelHubRouter::HandlePing(std::string* out) {
  size_t queued;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queued = pending_.size();
  }
  int64_t healthy = 0;
  int64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      ++total;
      if (backend->breaker().state() == CircuitBreaker::State::kClosed &&
          !backend->draining()) {
        ++healthy;
      }
    }
  }
  // Same shape as modelhubd's reply (ParsePingReply ignores the extra
  // role/healthy/backends tokens), so anything that can health-check a
  // backend can health-check a router.
  *out = std::string("pong state=") +
         (stopping_.load() ? "draining" : "serving") +
         " queue=" + std::to_string(queued) +
         " active=" + std::to_string(active_connections_.load()) +
         " role=router healthy=" + std::to_string(healthy) +
         " backends=" + std::to_string(total);
  return Status::OK();
}

Status ModelHubRouter::HandleGetSnapshot(const Frame& request,
                                         std::string* out) {
  std::string model;
  int64_t sequence = -1;
  int planes = 0;
  MH_RETURN_IF_ERROR(DecodeGetSnapshotRequest(Slice(request.payload), &model,
                                              &sequence, &planes));
  const std::string& shard_name = ring_.NodeFor(model);
  const auto it = shard_by_name_.find(shard_name);
  MH_CHECK(it != shard_by_name_.end());
  return ForwardToShard(it->second, request.opcode, request.payload, out);
}

Status ModelHubRouter::HandleListModels(std::string* out) {
  // Fan out to one healthy replica per shard; identical rows from shards
  // that replicate the same catalog collapse to one.
  std::set<std::string> seen;
  for (const auto& shard : shards_) {
    std::string text;
    MH_RETURN_IF_ERROR(ForwardToShard(
        shard.get(), static_cast<uint8_t>(Opcode::kListModels), "", &text));
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string row = text.substr(start, end - start);
      if (!row.empty() && seen.insert(row).second) {
        out->append(row);
        out->push_back('\n');
      }
      start = end + 1;
    }
  }
  return Status::OK();
}

Status ModelHubRouter::HandleDqlQuery(const Frame& request, std::string* out) {
  // Every shard runs the query over its own catalog; blocks are labelled
  // when the fleet has more than one shard so per-shard answers stay
  // attributable.
  for (const auto& shard : shards_) {
    std::string text;
    MH_RETURN_IF_ERROR(ForwardToShard(shard.get(), request.opcode,
                                      request.payload, &text));
    if (shards_.size() > 1) {
      out->append("-- " + shard->name + " --\n");
    }
    out->append(text);
    if (!text.empty() && text.back() != '\n') out->push_back('\n');
  }
  return Status::OK();
}

Status ModelHubRouter::HandleStats(std::string* out) {
  UpdateUptimeGauge();
  UpdateHealthGauges();
  std::string own = MetricRegistry::Global()->Snapshot().ToJson();
  // Splice the slow-request ring into the router's own section as a
  // fourth top-level key next to counters/gauges/histograms.
  own.pop_back();
  own += ",\"slow_requests\":" + slow_log_.ToJson() + "}";
  std::string json = "{\"router\":";
  json += own;
  json += ",\"backends\":{";
  bool first = true;
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      if (!first) json += ",";
      first = false;
      json += "\"" + JsonEscape(backend->endpoint().Name()) + "\":{";
      json += "\"shard\":\"" + JsonEscape(shard->name) + "\"";
      json += ",\"breaker\":\"";
      json += BreakerStateToString(backend->breaker().state());
      json += "\"";
      json += ",\"draining\":";
      json += backend->draining() ? "true" : "false";
      std::string stats;
      const Status fetched =
          TryBackend(backend.get(), static_cast<uint8_t>(Opcode::kStats), "",
                     &stats);
      if (fetched.ok()) {
        json += ",\"stats\":" + stats;
      } else {
        json += ",\"error\":\"" + JsonEscape(fetched.ToString()) + "\"";
      }
      json += "}";
    }
  }
  json += "}}";
  *out = std::move(json);
  return Status::OK();
}

Status ModelHubRouter::HandleGetTrace(std::string* out) {
  // Own section first, then a best-effort section from every backend: a
  // dead or breaker-refused backend contributes nothing rather than
  // failing the whole fleet merge.
  AppendTraceDump(out, CollectTraceDump("router@" + options_.host + ":" +
                                        std::to_string(port())));
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      std::string section;
      const Status fetched =
          TryBackend(backend.get(), static_cast<uint8_t>(Opcode::kGetTrace),
                     "", &section);
      if (fetched.ok()) out->append(section);
    }
  }
  return Status::OK();
}

Status ModelHubRouter::HandleGetMetrics(std::string* out) {
  UpdateUptimeGauge();
  UpdateHealthGauges();
  std::set<std::string> seen_types;
  AppendPrometheusWithLabel(out, MetricRegistry::Global()->ToPrometheusText(),
                            "node=\"router\"", &seen_types);
  for (const auto& shard : shards_) {
    for (const auto& backend : shard->replicas) {
      std::string text;
      const Status fetched =
          TryBackend(backend.get(), static_cast<uint8_t>(Opcode::kGetMetrics),
                     "", &text);
      if (!fetched.ok()) continue;  // Best-effort, like GET_TRACE.
      const std::string label =
          "node=\"" + backend->endpoint().Name() + "\"";
      AppendPrometheusWithLabel(out, text, label, &seen_types);
    }
  }
  return Status::OK();
}

Backend* ModelHubRouter::PickReplica(ShardRuntime* shard, uint64_t start,
                                     int attempt) {
  const size_t n = shard->replicas.size();
  // First pass: healthy, non-draining replicas. The +attempt rotation
  // makes a retry lead with a different replica than the one that just
  // failed.
  for (size_t i = 0; i < n; ++i) {
    Backend* candidate =
        shard->replicas[(start + static_cast<uint64_t>(attempt) + i) % n]
            .get();
    if (candidate->draining()) continue;
    if (!candidate->breaker().Allow()) continue;
    return candidate;
  }
  // Second pass: a draining backend still answers reads — better than
  // shedding when it is the only replica left standing.
  for (size_t i = 0; i < n; ++i) {
    Backend* candidate =
        shard->replicas[(start + static_cast<uint64_t>(attempt) + i) % n]
            .get();
    if (candidate->breaker().Allow()) return candidate;
  }
  return nullptr;
}

Status ModelHubRouter::TryBackend(Backend* backend, uint8_t opcode,
                                  std::string_view payload, std::string* out) {
  // One span per attempt: the outbound CallDetailed reads CurrentSpanId()
  // inside this scope, so the backend's server.request parents to this
  // span and a failover shows up as sibling router.forward spans.
  TraceSpan span("router.forward");
  span.Annotate("backend", backend->endpoint().Name());
  Result<ModelHubClient> client = backend->Acquire();
  if (!client.ok()) {
    if (backend->breaker().RecordFailure()) {
      MH_COUNTER("router.breaker.opens.count")->Increment();
    }
    return client.status();
  }
  Result<WireResponse> response = client->CallDetailed(opcode, payload);
  if (!response.ok()) {
    // Transport fault mid-exchange: this socket is unusable and any
    // pooled siblings into the same dead process probably are too.
    backend->InvalidatePool();
    if (backend->breaker().RecordFailure()) {
      MH_COUNTER("router.breaker.opens.count")->Increment();
    }
    return response.status();
  }
  const Status remote = std::move(response->remote);
  if (remote.IsUnavailable() || remote.IsDeadlineExceeded()) {
    // The backend shed us (draining / at capacity) and closes the
    // connection after a shed, so the socket is not pooled.
    if (backend->breaker().RecordFailure()) {
      MH_COUNTER("router.breaker.opens.count")->Increment();
    }
    return remote;
  }
  // A definitive answer — success or a server-side error like NotFound —
  // proves the backend healthy.
  if (backend->breaker().RecordSuccess()) {
    MH_COUNTER("router.breaker.closes.count")->Increment();
  }
  backend->Release(std::move(*client));
  *out = std::move(response->result);
  return remote;
}

Status ModelHubRouter::ForwardToShard(ShardRuntime* shard, uint8_t opcode,
                                      std::string_view payload,
                                      std::string* out) {
  const uint64_t start = shard->rr.fetch_add(1, std::memory_order_relaxed);
  const size_t num_replicas = shard->replicas.size();
  const int max_attempts = std::max(1, options_.max_attempts);
  Status last = Status::Unavailable("no admittable replica");
  Backend* previous = nullptr;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (stopping_.load()) break;
    Backend* backend = PickReplica(shard, start, attempt);
    if (backend == nullptr) break;  // Every breaker open: shed fast.
    if (attempt > 0) {
      MH_COUNTER("router.retries.count")->Increment();
      if (backend != previous) {
        MH_COUNTER("router.failovers.count")->Increment();
      }
    }
    previous = backend;
    const Status status = TryBackend(backend, opcode, payload, out);
    if (!RetryableStatus(status)) return status;  // OK or definitive error.
    last = status;
    // Backoff only once the whole replica set has been tried this round —
    // failing over to a different live replica should not wait.
    if (attempt + 1 < max_attempts &&
        static_cast<size_t>(attempt + 1) >= num_replicas) {
      const int shift = std::min(attempt, 10);
      const int base =
          std::min(options_.retry_backoff_max_ms,
                   std::max(1, options_.retry_backoff_base_ms) << shift);
      const uint64_t wait_ms =
          static_cast<uint64_t>(base) / 2 +
          JitterRng().Uniform(static_cast<uint64_t>(base) / 2 + 1);
      for (uint64_t slept = 0; slept < wait_ms && !stopping_.load();
           slept += 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<uint64_t>(5, wait_ms - slept)));
      }
    }
  }
  MH_COUNTER("router.shed.count")->Increment();
  return Status::Unavailable("shard " + shard->name +
                             " unavailable: " + last.message());
}

void ModelHubRouter::ProbeLoop() {
  while (!stopping_.load()) {
    for (const auto& shard : shards_) {
      for (const auto& backend : shard->replicas) {
        if (stopping_.load()) return;
        CircuitBreaker& breaker = backend->breaker();
        const CircuitBreaker::State state = breaker.state();
        if (state == CircuitBreaker::State::kHalfOpen) {
          continue;  // Someone else's probe is in flight.
        }
        if (state == CircuitBreaker::State::kOpen && !breaker.Allow()) {
          continue;  // Still cooling down.
        }
        MH_COUNTER("router.probe.count")->Increment();
        ClientOptions probe_options;
        probe_options.connect_timeout_ms = options_.probe_timeout_ms;
        probe_options.op_timeout_ms = options_.probe_timeout_ms;
        Status probe;
        Result<ModelHubClient> client = ModelHubClient::Connect(
            backend->endpoint().host, backend->endpoint().port, probe_options);
        if (!client.ok()) {
          probe = client.status();
        } else {
          Result<std::string> pong = client->Ping();
          if (!pong.ok()) {
            probe = pong.status();
          } else {
            Result<PingInfo> info = ParsePingReply(*pong);
            if (!info.ok()) {
              probe = info.status();
            } else {
              backend->set_draining(info->draining());
            }
          }
        }
        if (probe.ok()) {
          if (breaker.RecordSuccess()) {
            MH_COUNTER("router.breaker.closes.count")->Increment();
          }
        } else {
          MH_COUNTER("router.probe.failures.count")->Increment();
          backend->InvalidatePool();
          if (breaker.RecordFailure()) {
            MH_COUNTER("router.breaker.opens.count")->Increment();
          }
        }
      }
    }
    UpdateHealthGauges();
    const int interval = std::max(10, options_.probe_interval_ms);
    for (int slept = 0; slept < interval && !stopping_.load(); slept += 10) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(10, interval - slept)));
    }
  }
}

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;

void OnStopSignal(int) { g_stop_signal = 1; }

}  // namespace

int RunRouterMain(FleetTopology topology, RouterOptions options) {
  const size_t num_shards = topology.shards.size();
  const size_t num_backends = topology.num_backends();
  ModelHubRouter router(std::move(topology), std::move(options));
  const Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "modelhub-router: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("modelhub-router listening on %s:%d (%zu shards, %zu backends)\n",
              router.options().host.c_str(), router.port(), num_shards,
              num_backends);
  std::fflush(stdout);
  g_stop_signal = 0;
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  while (g_stop_signal == 0 && !router.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "modelhub-router: draining\n");
  const Status stopped = router.Stop();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (!stopped.ok()) {
    std::fprintf(stderr, "modelhub-router: %s\n", stopped.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace modelhub
