#ifndef MODELHUB_ROUTER_BACKEND_H_
#define MODELHUB_ROUTER_BACKEND_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/client.h"

namespace modelhub {

/// One backend address in the fleet topology.
struct Endpoint {
  std::string host;
  int port = 0;
  std::string Name() const { return host + ":" + std::to_string(port); }
};

/// Per-backend circuit breaker (the Hystrix state machine).
///
///   kClosed    traffic flows; consecutive failures >= threshold opens it.
///   kOpen      no traffic for `open_ms` (fail fast instead of hammering
///              a dead peer), then the next Allow() admits ONE caller as
///              the half-open probe.
///   kHalfOpen  exactly one probe in flight; success closes the breaker,
///              failure re-opens it for another cooldown.
///
/// Both live requests and the active health prober call Allow/Record*, so
/// whichever reaches a recovered backend first re-admits it. Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 3;  ///< Consecutive failures that open it.
    int open_ms = 500;          ///< Cooldown before the half-open probe.
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// True when the caller may send traffic to this backend. On an open
  /// breaker whose cooldown has expired this admits the caller and moves
  /// to half-open — that caller's Record* decides the breaker's fate.
  bool Allow();

  /// Returns true when this call closed a previously open/half-open
  /// breaker (a recovery event worth counting).
  bool RecordSuccess();
  /// Returns true when this call opened the breaker (a trip event).
  bool RecordFailure();

  State state() const;
  uint64_t consecutive_failures() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  uint64_t failures_ = 0;  ///< Consecutive, reset on success.
  std::chrono::steady_clock::time_point opened_at_{};
};

const char* BreakerStateToString(CircuitBreaker::State state);

/// Runtime state the router keeps per backend replica: its address, the
/// breaker, the drain flag fed by PING state, and a small pool of idle
/// wire connections (serving through a fresh TCP connect per request
/// would double per-request latency and halve fleet throughput).
class Backend {
 public:
  Backend(Endpoint endpoint, int shard, CircuitBreaker::Options breaker,
          ClientOptions client_options)
      : endpoint_(std::move(endpoint)),
        shard_(shard),
        breaker_(breaker),
        client_options_(client_options) {}

  const Endpoint& endpoint() const { return endpoint_; }
  int shard() const { return shard_; }
  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  void set_draining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }

  /// A pooled idle connection, or a fresh connect (bounded by the client
  /// options' connect timeout; no connect retries — the router's retry
  /// loop owns failover policy).
  Result<ModelHubClient> Acquire();

  /// Returns a connection that completed a request cleanly to the pool.
  void Release(ModelHubClient client);

  /// Drops every pooled connection — called after a transport fault so
  /// later requests do not burn retry budget on stale sockets into a
  /// dead process.
  void InvalidatePool();

  size_t pooled_connections() const;

 private:
  const Endpoint endpoint_;
  const int shard_;
  CircuitBreaker breaker_;
  const ClientOptions client_options_;
  std::atomic<bool> draining_{false};

  static constexpr size_t kMaxPooled = 8;
  mutable std::mutex pool_mu_;
  std::vector<ModelHubClient> pool_;  ///< Guarded by pool_mu_.
};

}  // namespace modelhub

#endif  // MODELHUB_ROUTER_BACKEND_H_
